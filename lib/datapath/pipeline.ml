(** Data-path pipelining (paper §4.2.3): latch placement driven by the
    {!Timing} netlist's per-instruction delay estimation, followed by a
    slack-based retiming pass that slides low-fanout instructions across
    stage boundaries to minimize latch bits at the same clock target.

    Two invariants are preserved throughout: every SNX gets a latch feeding
    its LPR, and each LPR-to-SNX feedback path stays within a single stage
    so the pipeline accepts one iteration per cycle ("each pipeline stage is
    an instance of single iteration in the for-loop body"). *)

module Instr = Roccc_vm.Instr
module Proc = Roccc_vm.Proc

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(** Default combinational budget per stage, in nanoseconds. *)
let default_target_ns = 5.0

type staged_instr = {
  si : Instr.instr;
  si_node : int;       (** owning data-path node id *)
  mutable stage : int; (** start stage of the instruction's region *)
  si_delay : float;    (** per-stage combinational delay *)
  si_stages : int;     (** stages occupied: >1 = pinned multi-stage region *)
}

type t = {
  dp : Graph.t;
  widths : Widths.t;
  timing : Timing.t;               (** the timed netlist staged over *)
  instrs : staged_instr list;      (** topological order *)
  stage_count : int;
  stage_delays : float array;      (** worst combinational path per stage *)
  clock_mhz : float;
  latch_bits : int;                (** total pipeline-register bits *)
  greedy_latch_bits : int;         (** latch bits before retiming *)
  retime_moves : int;              (** accepted retiming moves *)
  feedback_bits : int;             (** SNX register bits *)
  target_ns : float;
  def_stage : (Instr.vreg, int) Hashtbl.t;
  instr_stage : (Instr.instr, int) Hashtbl.t;
}

let latency (p : t) = p.stage_count

(** Throughput in results per clock: one iteration enters per cycle, so it
    equals the number of outputs the data path produces per iteration. *)
let outputs_per_cycle (p : t) = List.length p.dp.Graph.output_ports

(** Stage where a register's value is produced (0 for external inputs). *)
let stage_of_def (p : t) (r : Instr.vreg) : int =
  Option.value (Hashtbl.find_opt p.def_stage r) ~default:0

(** Stage an instruction executes in (0 for instructions outside the staged
    set). *)
let stage_of_instr (p : t) (i : Instr.instr) : int =
  Option.value (Hashtbl.find_opt p.instr_stage i) ~default:0

(** Latch boundaries operand [r] crosses to reach instruction [i] — the
    delay-chain depth the VHDL generator materializes for this use. *)
let use_delay (p : t) (i : Instr.instr) (r : Instr.vreg) : int =
  max 0 (stage_of_instr p i - stage_of_def p r)

(** All pipeline flip-flop bits this staging implies — latch bits plus the
    SNX feedback registers. The area model charges registers from here.
    (A multi-stage operator's internal pipeline registers are part of the
    latch accounting: its consumers sit at least [si_stages] boundaries
    past its start stage, so the result's delay chain pays them.) *)
let register_bits (p : t) : int = p.latch_bits + p.feedback_bits

(** Pinned multi-stage regions of the staging, as
    [(instr, start_stage, stages)]. Empty for a purely single-cycle data
    path. *)
let staged_regions (p : t) : (Instr.instr * int * int) list =
  List.filter_map
    (fun si ->
      if si.si_stages > 1 then Some (si.si, si.stage, si.si_stages) else None)
    p.instrs

(** Number of multi-stage operators in the staging. *)
let multi_stage_ops (p : t) : int = List.length (staged_regions p)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(* Stage assignments live in an array indexed by [ti_index] while under
   construction; [staged_instr] is materialized at the end. *)

let stage_count_of (tm : Timing.t) (stages : int array) : int =
  1
  + List.fold_left
      (fun acc (ti : Timing.tinstr) ->
        max acc (stages.(ti.Timing.ti_index) + ti.Timing.ti_stages - 1))
      0 tm.Timing.instrs

(* Feedback sanity: every LPR/SNX pair of each feedback signal must share a
   stage, otherwise the loop would need more than one cycle per iteration. *)
let check_feedback_stages (tm : Timing.t) (stages : int array) : unit =
  List.iter
    (fun (name, _, _) ->
      let op_stages op_match =
        List.filter_map
          (fun (ti : Timing.tinstr) ->
            if op_match ti.Timing.ti.Instr.op then
              Some stages.(ti.Timing.ti_index)
            else None)
          tm.Timing.instrs
      in
      let lpr_stages =
        op_stages (function Instr.Lpr n -> String.equal n name | _ -> false)
      in
      let snx_stages =
        op_stages (function Instr.Snx n -> String.equal n name | _ -> false)
      in
      match lpr_stages, snx_stages with
      | _, [] | [], _ -> ()
      | ls, ss ->
        List.iter
          (fun l ->
            List.iter
              (fun s ->
                if l <> s then
                  errf
                    "pipeline: feedback %s spans stages %d and %d — the \
                     LPR/SNX loop must fit one stage"
                    name l s)
              ss)
          ls)
    tm.Timing.dp.Graph.proc.Proc.feedbacks

(* ---- slack-based retiming ----
   Slide unpinned instructions across one stage boundary at a time (later
   first — that is where dangling zero-delay producers accumulate latches —
   then earlier), accepting a move only when the total latch bits strictly
   decrease and the worst per-stage delay stays within [budget]. Pinned:
   LPR/SNX instructions and everything on a feedback path. Terminates
   because every accepted move strictly decreases an integer. *)
let retime_stages (tm : Timing.t) (stages : int array) ~(stage_count : int)
    ~(budget : float) : int =
  let pinned = Array.make (Array.length stages) false in
  List.iter
    (fun (ti : Timing.tinstr) ->
      (* multi-stage regions are pinned: retiming must never move into or
         split them *)
      if ti.Timing.ti_stages > 1 then pinned.(ti.Timing.ti_index) <- true;
      match ti.Timing.ti.Instr.op with
      | Instr.Lpr _ | Instr.Snx _ -> pinned.(ti.Timing.ti_index) <- true
      | _ -> ())
    tm.Timing.instrs;
  List.iter
    (fun (_, members) ->
      List.iter
        (fun (ti : Timing.tinstr) -> pinned.(ti.Timing.ti_index) <- true)
        members)
    (Timing.feedback_paths tm);
  let stage_of (ti : Timing.tinstr) = stages.(ti.Timing.ti_index) in
  let current = ref (Timing.latch_bits tm ~stage_of ~stage_count) in
  let moves = ref 0 in
  let try_move (ti : Timing.tinstr) (delta : int) : bool =
    let idx = ti.Timing.ti_index in
    if pinned.(idx) then false
    else begin
      let s = stages.(idx) in
      let s' = s + delta in
      if s' < 0 || s' >= stage_count then false
      else begin
        let valid =
          if delta > 0 then
            (* push later: every consumer must still be reachable — at s'
               or later, strictly later for staged consumers (their
               operands are latched at the region entry boundary) *)
            (match ti.Timing.ti.Instr.dst with
            | Some d ->
              List.for_all
                (fun (c : Timing.tinstr) ->
                  stage_of c
                  >= s' + if c.Timing.ti_stages > 1 then 1 else 0)
                (Option.value
                   (Hashtbl.find_opt tm.Timing.consumers d)
                   ~default:[])
            | None -> true)
          else
            (* pull earlier: every producer's value must be available at
               s' — single-cycle producers at s' or earlier, multi-stage
               regions fully retired (external operands are available from
               stage 0) *)
            List.for_all
              (fun r ->
                match Hashtbl.find_opt tm.Timing.producer r with
                | Some p -> stage_of p + Timing.region_span p <= s'
                | None -> true)
              ti.Timing.ti.Instr.srcs
        in
        if not valid then false
        else begin
          stages.(idx) <- s';
          let bits = Timing.latch_bits tm ~stage_of ~stage_count in
          let worst =
            Array.fold_left Float.max 0.0
              (Timing.stage_delays tm ~stage_of ~stage_count)
          in
          if bits < !current && worst <= budget +. 1e-9 then begin
            current := bits;
            incr moves;
            true
          end
          else begin
            stages.(idx) <- s;
            false
          end
        end
      end
    end
  in
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < 64 do
    improved := false;
    incr rounds;
    List.iter
      (fun ti -> if try_move ti 1 then improved := true)
      (List.rev tm.Timing.instrs);
    List.iter (fun ti -> if try_move ti (-1) then improved := true)
      tm.Timing.instrs
  done;
  !moves

let finalize (tm : Timing.t) (stages : int array) ~(stage_count : int)
    ~(greedy_latch_bits : int) ~(retime_moves : int) : t =
  let stage_of (ti : Timing.tinstr) = stages.(ti.Timing.ti_index) in
  let instrs =
    List.map
      (fun (ti : Timing.tinstr) ->
        { si = ti.Timing.ti;
          si_node = ti.Timing.ti_node;
          stage = stage_of ti;
          si_delay = ti.Timing.ti_delay;
          si_stages = ti.Timing.ti_stages })
      tm.Timing.instrs
  in
  let stage_delays = Timing.stage_delays tm ~stage_of ~stage_count in
  let worst = Array.fold_left Float.max 0.0 stage_delays in
  let clock_mhz = Delay.clock_mhz_of_stage_delay worst in
  let latch_bits = Timing.latch_bits tm ~stage_of ~stage_count in
  let feedback_bits = Timing.feedback_bits tm in
  let def_stage : (Instr.vreg, int) Hashtbl.t = Hashtbl.create 64 in
  let instr_stage : (Instr.instr, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun si ->
      Hashtbl.replace instr_stage si.si si.stage;
      match si.si.Instr.dst with
      | Some d -> Hashtbl.replace def_stage d si.stage
      | None -> ())
    instrs;
  { dp = tm.Timing.dp;
    widths = tm.Timing.widths;
    timing = tm;
    instrs;
    stage_count;
    stage_delays;
    clock_mhz;
    latch_bits;
    greedy_latch_bits;
    retime_moves;
    feedback_bits;
    target_ns = tm.Timing.target_ns;
    def_stage;
    instr_stage }

let build ?(target_ns = default_target_ns) ?stage_budget ?decomp
    ?(retime = true) (dp : Graph.t) (widths : Widths.t) : t =
  let tm = Timing.build ~target_ns ?stage_budget ?decomp dp widths in
  let n = List.length tm.Timing.instrs in
  let stages = Array.make (max 1 n) 0 in
  (* ---- pass 1: the ASAP levels of the timed netlist ---- *)
  List.iter
    (fun (ti : Timing.tinstr) -> stages.(ti.Timing.ti_index) <- ti.Timing.asap)
    tm.Timing.instrs;
  let stage_of (ti : Timing.tinstr) = stages.(ti.Timing.ti_index) in
  (* ---- pass 2: feedback paths collapse onto one stage ---- *)
  List.iter
    (fun (name, members) ->
      List.iter
        (fun (ti : Timing.tinstr) ->
          if ti.Timing.ti_stages > 1 then
            errf
              "pipeline: feedback %s runs through a %d-stage operator — a \
               multi-stage region cannot fit the single-stage LPR/SNX loop"
              name ti.Timing.ti_stages)
        members;
      let s_star =
        List.fold_left (fun acc ti -> max acc (stage_of ti)) 0 members
      in
      List.iter
        (fun (ti : Timing.tinstr) -> stages.(ti.Timing.ti_index) <- s_star)
        members)
    (Timing.feedback_paths tm);
  (* ---- pass 3: forward monotonicity fixup ---- *)
  List.iter
    (fun (ti : Timing.tinstr) ->
      match ti.Timing.ti.Instr.op with
      | Instr.Lpr _ -> ()  (* reads the previous iteration's register *)
      | _ ->
        let entry = if ti.Timing.ti_stages > 1 then 1 else 0 in
        let m =
          List.fold_left
            (fun acc r ->
              match Hashtbl.find_opt tm.Timing.producer r with
              | Some p ->
                (* past the producer's region; staged consumers one
                   boundary further (operands latched at entry) *)
                max acc
                  (stage_of p
                  + max (Timing.region_span p) entry)
              | None -> acc)
            (stage_of ti) ti.Timing.ti.Instr.srcs
        in
        stages.(ti.Timing.ti_index) <- m)
    tm.Timing.instrs;
  check_feedback_stages tm stages;
  let stage_count = stage_count_of tm stages in
  let greedy_latch_bits = Timing.latch_bits tm ~stage_of ~stage_count in
  let retime_moves =
    if retime then
      let budget =
        Array.fold_left Float.max 0.0
          (Timing.stage_delays tm ~stage_of ~stage_count)
      in
      retime_stages tm stages ~stage_count ~budget
    else 0
  in
  finalize tm stages ~stage_count ~greedy_latch_bits ~retime_moves

(** Retime an already-staged pipeline in place of its stage assignment:
    slide latches across low-fanout instructions until latch bits reach a
    local minimum, never exceeding the pipeline's current worst stage
    delay. Idempotent once a fixpoint is reached. *)
let retime (p : t) : t =
  let tm = p.timing in
  let stages = Array.make (max 1 (List.length p.instrs)) 0 in
  List.iteri (fun idx si -> stages.(idx) <- si.stage) p.instrs;
  let stage_of (ti : Timing.tinstr) = stages.(ti.Timing.ti_index) in
  let budget =
    Array.fold_left Float.max 0.0
      (Timing.stage_delays tm ~stage_of ~stage_count:p.stage_count)
  in
  let moves = retime_stages tm stages ~stage_count:p.stage_count ~budget in
  finalize tm stages ~stage_count:p.stage_count
    ~greedy_latch_bits:p.greedy_latch_bits
    ~retime_moves:(p.retime_moves + moves)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let describe (p : t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "pipeline %s: %d stage(s), clock %.1f MHz, %d latch bits, %d feedback \
        bits\n"
       p.dp.Graph.proc.Proc.pname p.stage_count p.clock_mhz p.latch_bits
       p.feedback_bits);
  if p.retime_moves > 0 then
    Buffer.add_string buf
      (Printf.sprintf "  retiming: %d move(s), %d -> %d latch bits\n"
         p.retime_moves p.greedy_latch_bits p.latch_bits);
  List.iter
    (fun (i, start, k) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  pinned region: %s over stages %d..%d (%d stages)\n"
           (Instr.opcode_name i.Instr.op) start (start + k - 1) k))
    (staged_regions p);
  Array.iteri
    (fun s d ->
      let count = List.length (List.filter (fun si -> si.stage = s) p.instrs) in
      Buffer.add_string buf
        (Printf.sprintf "  stage %d: %d instr(s), %.2f ns\n" s count d))
    p.stage_delays;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                     *)
(* ------------------------------------------------------------------ *)

(** Invariants of a staged pipeline: every data-path instruction is staged
    exactly once, stages lie in [0, stage_count), dataflow is forward
    (a producer's stage never exceeds its consumer's, LPRs excepted — they
    read the previous iteration), each feedback's LPR/SNX pair shares one
    stage, and the recorded latch/feedback bit counts balance against an
    independent recomputation from the stage assignment. Raises {!Error}. *)
let verify (p : t) : unit =
  let n_staged = List.length p.instrs in
  let n_graph = Graph.instr_count p.dp in
  if n_staged <> n_graph then
    errf "pipeline: %d staged instruction(s) but the data path has %d"
      n_staged n_graph;
  if Array.length p.stage_delays <> p.stage_count then
    errf "pipeline: %d stage delay(s) for %d stage(s)"
      (Array.length p.stage_delays) p.stage_count;
  List.iter
    (fun si ->
      if si.stage < 0 || si.stage >= p.stage_count then
        errf "pipeline: instruction staged at %d outside [0,%d)" si.stage
          p.stage_count;
      if si.si_stages > 1 && si.stage + si.si_stages > p.stage_count then
        errf
          "pipeline: %d-stage region starting at %d overruns the %d-stage \
           schedule"
          si.si_stages si.stage p.stage_count)
    p.instrs;
  let producer : (Instr.vreg, staged_instr) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun si ->
      match si.si.Instr.dst with
      | Some d -> Hashtbl.replace producer d si
      | None -> ())
    p.instrs;
  List.iter
    (fun si ->
      match si.si.Instr.op with
      | Instr.Lpr _ -> ()  (* reads the feedback register, not a wire *)
      | _ ->
        List.iter
          (fun r ->
            match Hashtbl.find_opt producer r with
            | Some prod ->
              (* earliest stage this consumer may occupy: a multi-stage
                 producer's result exists only past its region exit
                 register; a multi-stage consumer latches its operands at
                 the region entry boundary, so single-cycle producers must
                 finish a stage earlier *)
              let min_stage =
                if prod.si_stages > 1 then prod.stage + prod.si_stages
                else prod.stage + if si.si_stages > 1 then 1 else 0
              in
              if si.stage < min_stage then
                if prod.si_stages > 1 then
                  errf
                    "pipeline: value v%d consumed at stage %d inside or \
                     before its producer's pinned region (stages %d..%d)"
                    r si.stage prod.stage
                    (prod.stage + prod.si_stages - 1)
                else
                  errf
                    "pipeline: value v%d produced at stage %d but consumed \
                     at stage %d"
                    r prod.stage si.stage
            | None -> ())
          si.si.Instr.srcs)
    p.instrs;
  List.iter
    (fun (name, _, _) ->
      let stages op_match =
        List.filter_map
          (fun si ->
            match si.si.Instr.op with
            | op when op_match op -> Some si.stage
            | _ -> None)
          p.instrs
      in
      let lpr_stages =
        stages (function Instr.Lpr n -> String.equal n name | _ -> false)
      in
      let snx_stages =
        stages (function Instr.Snx n -> String.equal n name | _ -> false)
      in
      match lpr_stages, snx_stages with
      | _, [] | [], _ -> ()
      | ls, ss ->
        List.iter
          (fun l ->
            List.iter
              (fun s ->
                if l <> s then
                  errf "pipeline: feedback %s latched across stages %d and %d"
                    name l s)
              ss)
          ls)
    p.dp.Graph.proc.Proc.feedbacks;
  (* latch balance: recompute register crossings from the stage assignment *)
  let last_use : (Instr.vreg, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun si ->
      List.iter
        (fun r ->
          let cur = Option.value (Hashtbl.find_opt last_use r) ~default:(-1) in
          if si.stage > cur then Hashtbl.replace last_use r si.stage)
        si.si.Instr.srcs)
    p.instrs;
  List.iter
    (fun (port : Proc.port) ->
      Hashtbl.replace last_use port.Proc.port_reg p.stage_count)
    p.dp.Graph.output_ports;
  let latch_bits =
    Hashtbl.fold
      (fun r use_stage acc ->
        let def_stage =
          match Hashtbl.find_opt producer r with
          | Some prod -> prod.stage
          | None -> 0
        in
        let crossings = max 0 (use_stage - def_stage) in
        acc + (crossings * (try Widths.width p.widths r with _ -> 32)))
      last_use 0
  in
  if latch_bits <> p.latch_bits then
    errf "pipeline: latch bits out of balance — recorded %d, stages imply %d"
      p.latch_bits latch_bits;
  let feedback_bits =
    List.fold_left
      (fun acc (_, kind, _) -> acc + kind.Roccc_cfront.Ast.bits)
      0 p.dp.Graph.proc.Proc.feedbacks
  in
  if feedback_bits <> p.feedback_bits then
    errf "pipeline: feedback bits out of balance — recorded %d, expected %d"
      p.feedback_bits feedback_bits
