(** Bit-width inference (paper §4.2.4 / §5): "The compiler infers the inner
    signals' bit size automatically... We derive bit width only based on port
    size and opcodes."

    Implemented as a forward interval analysis: every signal carries a
    conservative value interval derived from the port kinds and opcodes
    (saturating 64-bit arithmetic); the physical width of a signal is the
    number of bits its interval needs under the signal's declared
    signedness, capped at the declared C kind (the software semantics
    truncates there). Soundness is checked by the test suite: evaluating the
    data path with every intermediate truncated to its inferred width must
    give identical results. *)

module Instr = Roccc_vm.Instr
module Proc = Roccc_vm.Proc

module IM = Map.Make (Int)

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(** Inferred physical width of every register in the data path. *)
type t = int IM.t

let width (w : t) (r : Instr.vreg) : int =
  match IM.find_opt r w with
  | Some bits -> bits
  | None -> errf "widths: no inferred width for v%d" r

let width_opt (w : t) (r : Instr.vreg) : int option = IM.find_opt r w

(* ------------------------------------------------------------------ *)
(* Saturating interval arithmetic                                      *)
(* ------------------------------------------------------------------ *)

type interval = { lo : int64; hi : int64 }

(* Guard band so interval endpoints never overflow int64 during ops. *)
let sat_min = Int64.neg (Int64.shift_left 1L 55)
let sat_max = Int64.shift_left 1L 55

let clamp v = Int64.max sat_min (Int64.min sat_max v)

let make_interval lo hi = { lo = clamp lo; hi = clamp hi }

(* Widest kind the interval domain can represent exactly: beyond the
   saturation guard band the kind's own range does not fit in the domain
   (and the unsigned 64-bit maximum is not even representable in int64),
   so wide kinds get the whole band — the "unknown" element. *)
let interval_kind_bits = 55

let of_kind (k : Instr.ikind) : interval =
  if k.Roccc_cfront.Ast.bits > interval_kind_bits then
    if k.Roccc_cfront.Ast.signed then { lo = sat_min; hi = sat_max }
    else { lo = 0L; hi = sat_max }
  else
    make_interval
      (Roccc_util.Bits.min_value ~signed:k.Roccc_cfront.Ast.signed
         k.Roccc_cfront.Ast.bits)
      (Roccc_util.Bits.max_value ~signed:k.Roccc_cfront.Ast.signed
         k.Roccc_cfront.Ast.bits)

let hull a b = make_interval (Int64.min a.lo b.lo) (Int64.max a.hi b.hi)

let nonneg i = Int64.compare i.lo 0L >= 0

let sat_add a b = clamp (Int64.add a b)
let sat_sub a b = clamp (Int64.sub a b)
let sat_mul a b =
  (* detect overflow by division check on the clamped domain *)
  if Int64.equal a 0L || Int64.equal b 0L then 0L
  else
    let p = Int64.mul a b in
    if Int64.equal (Int64.div p a) b then clamp p
    else if (Int64.compare a 0L > 0) = (Int64.compare b 0L > 0) then sat_max
    else sat_min

let iv_add a b = make_interval (sat_add a.lo b.lo) (sat_add a.hi b.hi)
let iv_sub a b = make_interval (sat_sub a.lo b.hi) (sat_sub a.hi b.lo)
let iv_neg a = make_interval (Int64.neg a.hi) (Int64.neg a.lo)

let iv_mul a b =
  let products =
    [ sat_mul a.lo b.lo; sat_mul a.lo b.hi; sat_mul a.hi b.lo;
      sat_mul a.hi b.hi ]
  in
  make_interval
    (List.fold_left Int64.min (List.hd products) products)
    (List.fold_left Int64.max (List.hd products) products)

let max_abs i = Int64.max (Int64.abs i.lo) (Int64.abs i.hi)

(* Signed bits needed to represent every value of the interval. *)
let signed_bits (i : interval) : int =
  max (Roccc_util.Bits.bits_for_signed i.lo)
    (Roccc_util.Bits.bits_for_signed i.hi)

(* Full signed range of k bits. *)
let signed_range k =
  let k = max 1 (min 62 k) in
  make_interval
    (Int64.neg (Int64.shift_left 1L (k - 1)))
    (Int64.sub (Int64.shift_left 1L (k - 1)) 1L)

(* Result interval per opcode. [consts] maps registers to known constant
   values for shift/div precision. *)
let op_interval (op : Instr.opcode) (kind : Instr.ikind)
    ~(const_of : int -> int64 option) (srcs : interval list) : interval =
  let s n = List.nth srcs n in
  match op with
  | Instr.Add -> iv_add (s 0) (s 1)
  | Instr.Sub -> iv_sub (s 0) (s 1)
  | Instr.Neg -> iv_neg (s 0)
  | Instr.Mul -> iv_mul (s 0) (s 1)
  | Instr.Div ->
    (* |a / b| <= |a|, plus one for -min / -1 *)
    let m = sat_add (max_abs (s 0)) 1L in
    make_interval (Int64.neg m) m
  | Instr.Rem ->
    let m = Int64.min (max_abs (s 0)) (max_abs (s 1)) in
    make_interval (Int64.neg m) m
  | Instr.Shl -> (
    match const_of 1 with
    | Some c when Int64.compare c 0L >= 0 && Int64.compare c 62L <= 0 ->
      let f = Int64.shift_left 1L (Int64.to_int c) in
      iv_mul (s 0) (make_interval f f)
    | _ ->
      (* unknown shift: bounded only by the declared kind *)
      of_kind kind)
  | Instr.Shr ->
    (* magnitude shrinks toward zero *)
    make_interval (Int64.min (s 0).lo 0L) (Int64.max (s 0).hi 0L)
  | Instr.Band ->
    if nonneg (s 0) || nonneg (s 1) then
      (* result of AND with a non-negative operand is within [0, that hi] *)
      let bound =
        if nonneg (s 0) && nonneg (s 1) then
          Int64.min (s 0).hi (s 1).hi
        else if nonneg (s 0) then (s 0).hi
        else (s 1).hi
      in
      make_interval 0L bound
    else signed_range (max (signed_bits (s 0)) (signed_bits (s 1)))
  | Instr.Bor | Instr.Bxor ->
    if nonneg (s 0) && nonneg (s 1) then
      (* set bits stay within the wider operand's bit count *)
      let bits =
        max
          (Roccc_util.Bits.bits_for_unsigned (s 0).hi)
          (Roccc_util.Bits.bits_for_unsigned (s 1).hi)
      in
      make_interval 0L (Roccc_util.Bits.mask (min 62 bits))
    else signed_range (max (signed_bits (s 0)) (signed_bits (s 1)))
  | Instr.Bnot ->
    (* ~a = -a - 1, exactly *)
    make_interval (sat_sub (Int64.neg (s 0).hi) 1L)
      (sat_sub (Int64.neg (s 0).lo) 1L)
  | Instr.Slt | Instr.Sle | Instr.Sgt | Instr.Sge | Instr.Seq | Instr.Sne
  | Instr.Land | Instr.Lor | Instr.Lnot -> make_interval 0L 1L
  | Instr.Mov -> s 0
  | Instr.Cvt -> s 0  (* clipped against the kind by the caller *)
  | Instr.Ldc v -> make_interval v v
  | Instr.Mux -> hull (s 1) (s 2)
  | Instr.Lpr _ | Instr.Snx _ | Instr.Lut _ -> of_kind kind

(* An interval endpoint pushed onto the saturation guard band has lost
   the true bound: the only sound width is the declared kind's. (For
   narrow kinds a saturated interval always escapes the kind range anyway,
   so this extra test changes nothing below [interval_kind_bits].) *)
let saturated (i : interval) : bool =
  Int64.compare i.lo sat_min <= 0 || Int64.compare i.hi sat_max >= 0

(* Width of an interval under the declared signedness, capped at the kind.
   If the interval escapes the kind's range the hardware wraps exactly like
   the software semantics, so the kind width is the answer. *)
let width_of_interval (kind : Instr.ikind) (i : interval) : int * interval =
  let kind_iv = of_kind kind in
  if saturated i then kind.Roccc_cfront.Ast.bits, kind_iv
  else if
    Int64.compare i.lo kind_iv.lo >= 0 && Int64.compare i.hi kind_iv.hi <= 0
  then begin
    let bits =
      if kind.Roccc_cfront.Ast.signed then signed_bits i
      else Roccc_util.Bits.bits_for_unsigned (Int64.max 0L i.hi)
    in
    max 1 (min bits kind.Roccc_cfront.Ast.bits), i
  end
  else kind.Roccc_cfront.Ast.bits, kind_iv

(* ------------------------------------------------------------------ *)
(* Inference                                                           *)
(* ------------------------------------------------------------------ *)

(** Infer widths for a built data path. Input ports start at their declared
    port ranges; every instruction's interval follows the opcode; widths are
    capped at the declared C kind. *)
let infer (dp : Graph.t) : t =
  let intervals : interval IM.t ref = ref IM.empty in
  let widths = ref IM.empty in
  let consts = Graph.constant_values dp in
  List.iter
    (fun (p : Proc.port) ->
      intervals := IM.add p.Proc.port_reg (of_kind p.Proc.port_kind) !intervals;
      widths :=
        IM.add p.Proc.port_reg p.Proc.port_kind.Roccc_cfront.Ast.bits !widths)
    dp.Graph.input_ports;
  let src_interval r =
    match IM.find_opt r !intervals with
    | Some i -> i
    | None -> errf "widths: operand v%d inferred out of order" r
  in
  List.iter
    (fun (n : Graph.node) ->
      List.iter
        (fun (i : Instr.instr) ->
          let srcs = List.map src_interval i.Instr.srcs in
          let const_of k =
            match List.nth_opt i.Instr.srcs k with
            | Some r -> Hashtbl.find_opt consts r
            | None -> None
          in
          match i.Instr.dst with
          | Some d ->
            let iv = op_interval i.Instr.op i.Instr.kind ~const_of srcs in
            let bits, iv = width_of_interval i.Instr.kind iv in
            intervals := IM.add d iv !intervals;
            widths := IM.add d bits !widths
          | None -> ())
        n.Graph.instrs)
    dp.Graph.nodes;
  !widths

(** Widths with inference disabled: every signal at its declared C kind —
    the baseline for the bit-narrowing ablation. *)
let declared (dp : Graph.t) : t =
  let widths = ref IM.empty in
  List.iter
    (fun (p : Proc.port) ->
      widths :=
        IM.add p.Proc.port_reg p.Proc.port_kind.Roccc_cfront.Ast.bits !widths)
    dp.Graph.input_ports;
  List.iter
    (fun (n : Graph.node) ->
      List.iter
        (fun (i : Instr.instr) ->
          match i.Instr.dst with
          | Some d ->
            widths := IM.add d i.Instr.kind.Roccc_cfront.Ast.bits !widths
          | None -> ())
        n.Graph.instrs)
    dp.Graph.nodes;
  !widths

(** Total inferred signal bits (a proxy for wiring/register pressure used by
    the area model and the ablation bench). *)
let total_bits (w : t) : int = IM.fold (fun _ bits acc -> acc + bits) w 0

(** Width statistics per declared vs. inferred bits — quantifies the paper's
    bit-narrowing claim. *)
let narrowing_ratio (dp : Graph.t) (w : t) : float =
  let declared, inferred =
    List.fold_left
      (fun (d, i) (n : Graph.node) ->
        List.fold_left
          (fun (d, i) (instr : Instr.instr) ->
            match instr.Instr.dst with
            | Some dst ->
              ( d + instr.Instr.kind.Roccc_cfront.Ast.bits,
                i + width w dst )
            | None -> d, i)
          (d, i) n.Graph.instrs)
      (0, 0) dp.Graph.nodes
  in
  if declared = 0 then 1.0 else float_of_int inferred /. float_of_int declared
