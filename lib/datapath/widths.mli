(** Bit-width inference (paper §4.2.4): a forward interval analysis deriving
    every signal's physical width from the port kinds and opcodes, capped at
    the declared C kind. Soundness invariant (property-tested): evaluating
    the data path with each intermediate truncated to its inferred width
    equals full-width evaluation. *)

exception Error of string

type t
(** Inferred width per virtual register. *)

val width : t -> Roccc_vm.Instr.vreg -> int
(** Raises {!Error} for registers outside the analyzed data path. *)

val width_opt : t -> Roccc_vm.Instr.vreg -> int option
(** [None] for registers outside the analyzed data path — the non-raising
    query the timing / area / VHDL layers use with their own fallback. *)

val infer : Graph.t -> t
(** Infer widths for a built data path. *)

val declared : Graph.t -> t
(** Widths with inference disabled — every signal at its declared C kind
    (the baseline for the bit-narrowing ablation). *)

val total_bits : t -> int
(** Sum of all inferred signal widths. *)

val narrowing_ratio : Graph.t -> t -> float
(** Inferred bits / declared bits over all instruction results; quantifies
    the paper's bit-narrowing claim (1.0 = no narrowing). *)
