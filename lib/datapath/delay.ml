(** Combinational delay estimation per instruction (paper §4.2.3: "The latch
    location in a node is decided based on the delay estimation of
    instructions"). The model is calibrated to a Virtex-II speed-grade-5
    fabric: a 4-input LUT + local routing is ~1 ns; carry chains add ~0.05 ns
    per bit; LUT-style multipliers cost roughly one LUT level per partial
    product row. *)

module Instr = Roccc_vm.Instr

module Wide = Roccc_ip_wide.Wide

(** One LUT level including local routing, in nanoseconds. *)
let lut_level_ns = 0.9

(** Incremental carry-chain delay per bit, in nanoseconds. *)
let carry_per_bit_ns = 0.045

(** Flip-flop clock-to-out plus setup, charged once per pipeline stage. *)
let register_overhead_ns = 1.1

(* Width of the widest source operand, falling back to the result kind. *)
let operand_width (kind : Instr.ikind) (src_widths : int list) : int =
  match src_widths with
  | [] -> kind.Roccc_cfront.Ast.bits
  | ws -> List.fold_left max 1 ws

let popcount64 (v : int64) : int =
  let rec loop v acc =
    if Int64.equal v 0L then acc
    else
      loop (Int64.shift_right_logical v 1)
        (acc + Int64.to_int (Int64.logand v 1L))
  in
  loop (Int64.abs v) 0

(* Single-cycle combinational estimate — the model every opcode used
   before the multi-stage refactor, still exact for all narrow shapes. *)
let single_cycle_delay_ns ?(const_operands : int64 option list = [])
    (op : Instr.opcode) (kind : Instr.ikind) (src_widths : int list) : float =
  let w = operand_width kind src_widths in
  let const_of n = List.nth_opt const_operands n |> Option.join in
  match op with
  | Instr.Add | Instr.Sub ->
    (* ripple-carry adder on the dedicated carry chain *)
    lut_level_ns +. (carry_per_bit_ns *. float_of_int w)
  | Instr.Neg -> lut_level_ns +. (carry_per_bit_ns *. float_of_int w)
  | Instr.Mul -> (
    match const_of 0, const_of 1 with
    | Some c, _ | _, Some c ->
      (* shift-add tree: depth log2(set bits) adder levels *)
      let terms = max 1 (popcount64 c) in
      let depth = max 1 (Roccc_util.Bits.clog2 terms) in
      float_of_int depth
      *. (lut_level_ns +. (carry_per_bit_ns *. float_of_int w))
    | None, None ->
      (* LUT-based array multiplier: ~one LUT level per two partial-product
         rows after the first, bounded below by two levels *)
      let rows = float_of_int (max 2 (w / 2)) in
      lut_level_ns *. (1.0 +. (rows /. 2.0)))
  | Instr.Div | Instr.Rem -> (
    match const_of 1 with
    | Some c
      when Int64.compare c 0L > 0 && Int64.equal (Int64.logand c (Int64.sub c 1L)) 0L ->
      (* power-of-two divisor: shift plus a rounding correction adder *)
      lut_level_ns +. (carry_per_bit_ns *. float_of_int w)
    | _ ->
      (* iterative array divider: one subtract per quotient bit *)
      float_of_int w
      *. (lut_level_ns +. (carry_per_bit_ns *. float_of_int w))
      /. 2.0)
  | Instr.Shl | Instr.Shr -> (
    match const_of 1 with
    | Some _ -> 0.0  (* constant shift is wiring *)
    | None ->
      (* barrel shifter: log2(w) mux levels *)
      lut_level_ns *. float_of_int (max 1 (Roccc_util.Bits.clog2 (max 2 w))))
  | Instr.Band | Instr.Bor | Instr.Bxor -> (
    match const_of 0, const_of 1 with
    | Some _, _ | _, Some _ -> 0.0  (* constant mask is wiring *)
    | None, None -> lut_level_ns)
  | Instr.Bnot -> lut_level_ns
  | Instr.Slt | Instr.Sle | Instr.Sgt | Instr.Sge ->
    lut_level_ns +. (carry_per_bit_ns *. float_of_int w)
  | Instr.Seq | Instr.Sne ->
    (* XOR reduce tree *)
    lut_level_ns *. float_of_int (max 1 (Roccc_util.Bits.clog2 (max 2 w)))
  | Instr.Land | Instr.Lor | Instr.Lnot -> lut_level_ns
  | Instr.Mov -> 0.0       (* plain wire *)
  | Instr.Cvt -> 0.0       (* wiring / sign-extension *)
  | Instr.Ldc _ -> 0.0     (* constant wiring *)
  | Instr.Mux -> lut_level_ns
  | Instr.Lpr _ -> 0.0     (* register read *)
  | Instr.Snx _ -> 0.0     (* register write (setup charged per stage) *)
  | Instr.Lut _ ->
    (* block-RAM/ROM access time *)
    2.5

(* ------------------------------------------------------------------ *)
(* Multi-stage operators                                               *)
(* ------------------------------------------------------------------ *)

(** A staged delay descriptor: the instruction occupies [stages]
    consecutive pipeline stages as one pinned region, each stage
    [per_stage_ns] of combinational logic. Single-cycle operators have
    [stages = 1] and [per_stage_ns] equal to the classic estimate. *)
type staged = {
  stages : int;
  per_stage_ns : float;
}

(** Total combinational latency across the region. *)
let total_ns (d : staged) : float = float_of_int d.stages *. d.per_stage_ns

(** Decomposition choice for wide multipliers (re-exported from the wide
    operator library so the option/tune layers need only this module). *)
type decomp = Wide.decomp = Csa | Addtree

let decomp_name = Wide.decomp_name
let decomp_of_string = Wide.decomp_of_string
let all_decomps = Wide.all_decomps

(** Default decomposition and stage budget (0 = the decomposition's
    natural depth, uncapped). *)
let default_decomp : decomp = Csa
let default_stage_budget = 0

(* An operator is wide when its result carry structure exceeds the 32-bit
   single-cycle granule. The result width matters, not just the operands:
   a 31x31 multiply feeding a 64-bit kind still builds a 62-bit product.
   Every pre-refactor kernel has kind.bits <= 32, so nothing narrow ever
   stages. *)
let result_width (op : Instr.opcode) (kind : Instr.ikind)
    (src_widths : int list) : int =
  let w = operand_width kind src_widths in
  let kb = kind.Roccc_cfront.Ast.bits in
  match op with
  | Instr.Mul -> (
    match src_widths with
    | [ a; b ] -> min kb (a + b)
    | _ -> min kb (2 * w))
  | Instr.Add | Instr.Sub | Instr.Neg -> min kb (w + 1)
  | _ -> w

let clamp_budget (budget : int) ((stages, total) : int * float) : staged =
  let stages = if budget > 0 then min stages budget else stages in
  let stages = max 1 stages in
  { stages; per_stage_ns = total /. float_of_int stages }

(** Staged delay descriptor of one instruction. Narrow shapes keep the
    classic single-cycle estimate; wide (>32-bit result) multiplies,
    adds/subtracts and divides decompose into pinned multi-stage regions
    using the {!Roccc_ip_wide.Wide} cost models, capped at [stage_budget]
    stages (0 = uncapped; capping never lowers the total delay, it only
    concentrates it, so more stages never increase the per-stage delay). *)
let instr_delay ?(stage_budget = default_stage_budget)
    ?(decomp = default_decomp) ?(const_operands : int64 option list = [])
    (op : Instr.opcode) (kind : Instr.ikind) (src_widths : int list) : staged =
  let const_of n = List.nth_opt const_operands n |> Option.join in
  let rw = result_width op kind src_widths in
  let w = operand_width kind src_widths in
  let wide = rw > 32 in
  let cost =
    if not wide then None
    else
      match op with
      | Instr.Mul -> (
        match const_of 0, const_of 1 with
        | Some c, _ | _, Some c ->
          let terms = max 1 (popcount64 c) in
          if terms = 1 then None (* a single shifted term is wiring *)
          else
            Some
              (Wide.const_mul_cost ~lut_ns:lut_level_ns
                 ~carry_ns:carry_per_bit_ns ~width:rw ~terms)
        | None, None ->
          Some
            (Wide.mul_cost decomp ~lut_ns:lut_level_ns
               ~carry_ns:carry_per_bit_ns ~width:rw))
      | Instr.Add | Instr.Sub ->
        Some
          (Wide.add_cost ~lut_ns:lut_level_ns ~carry_ns:carry_per_bit_ns
             ~width:rw)
      | Instr.Div | Instr.Rem -> (
        match const_of 1 with
        | Some c
          when Int64.compare c 0L > 0
               && Int64.equal (Int64.logand c (Int64.sub c 1L)) 0L ->
          None (* power-of-two divisor stays a shift + correction adder *)
        | _ ->
          Some
            (Wide.div_cost ~lut_ns:lut_level_ns ~carry_ns:carry_per_bit_ns
               ~width:w))
      | _ -> None
  in
  match cost with
  | Some c -> clamp_budget stage_budget c
  | None ->
    { stages = 1;
      per_stage_ns = single_cycle_delay_ns ~const_operands op kind src_widths }

(** Per-stage combinational delay of one instruction — for single-cycle
    operators exactly the classic estimate, for staged operators the
    balanced per-stage share. [const_operands] mark sources carrying
    compile-time constants (constant multipliers become shift-add trees,
    constant shifts become wiring). *)
let instr_delay_ns ?stage_budget ?decomp
    ?(const_operands : int64 option list = []) (op : Instr.opcode)
    (kind : Instr.ikind) (src_widths : int list) : float =
  (instr_delay ?stage_budget ?decomp ~const_operands op kind src_widths)
    .per_stage_ns

(** Achievable clock for a given worst-stage combinational delay, with a
    routing pessimism factor (global routing roughly doubles logic delay on
    a real device). *)
let routing_factor = 1.55

let clock_mhz_of_stage_delay (worst_ns : float) : float =
  let period = (worst_ns *. routing_factor) +. register_overhead_ns in
  1000.0 /. period
