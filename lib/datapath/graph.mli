(** The data-path graph (paper §4.2.2): a leveled DAG of nodes. Soft nodes
    come from CFG nodes ("the soft nodes, by themselves, will have the same
    behavior on a CPU"); mux and pipe nodes are hard nodes that "only appear
    in hardware and have no equivalence in software". *)

module Instr = Roccc_vm.Instr
module Proc = Roccc_vm.Proc

type kind =
  | Soft of Proc.label  (** data path of one CFG node *)
  | Mux_node of Proc.label
      (** hard node merging alternative branches in front of their common
          successor (node 7 in Figure 6) *)
  | Pipe_node
      (** hard node copying live variables around a branch region (node 6
          in Figure 6) *)
  | Entry_node  (** input operands copied at the entry of the data flow *)
  | Exit_node  (** output operands copied at the exit *)

type node = {
  id : int;
  node_kind : kind;
  mutable instrs : Instr.instr list;  (** in dependency order *)
  level : int;  (** stage index, 0 = entry *)
}

type t = {
  proc : Proc.t;
  nodes : node list;  (** ascending by level *)
  levels : node list array;
  input_ports : Proc.port list;
  output_ports : Proc.port list;
}

val kind_name : kind -> string
val is_hard : node -> bool

val node_defs : node -> Instr.vreg list
val node_inputs : node -> Instr.vreg list
val node_outputs : t -> node -> Instr.vreg list

val constant_values : t -> (Instr.vreg, int64) Hashtbl.t
(** Registers carrying compile-time constants (Ldc, propagated through
    Mov/Cvt) — shared by the area and delay models. *)

val instr_count : t -> int
val copy_count : t -> int

val flatten : t -> (int * Instr.instr) list
(** Every instruction tagged with its owning node id, in (level, node,
    program) order — topological by construction; the canonical
    instruction order shared by the timing and pipelining layers. *)

val to_string : t -> string
(** Level-by-level dump (the Figure 6/7 reproductions). *)

val to_dot : t -> string

exception Ill_formed of string

val verify : t -> unit
(** Structural well-formedness: unique node ids, consistent level index,
    single assignment, forward dataflow (operands defined at earlier
    levels or earlier in the same node; acyclic modulo LPR/SNX feedback).
    Raises {!Ill_formed}. *)
