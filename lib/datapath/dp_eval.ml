(** Evaluator for built data paths. Unlike the VM evaluator it executes every
    node — there is no control flow left; alternative branches both compute
    and a mux selects (paper §4.2.2). Used to verify that data-path
    construction preserves the software semantics, and as the functional
    core of the cycle-accurate hardware simulator. *)

module Instr = Roccc_vm.Instr
module Proc = Roccc_vm.Proc

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type result = {
  outputs : (string * int64) list;
  feedback_next : (string * int64) list;
}

let truncate (k : Instr.ikind) v =
  Roccc_util.Bits.truncate ~signed:k.Roccc_cfront.Ast.signed
    k.Roccc_cfront.Ast.bits v

(** Evaluate one iteration of the data path. When [widths] is given, every
    intermediate value is additionally truncated to its *inferred* physical
    width — the hardware the generator emits. Bit-width inference is sound
    iff this changes nothing; the property tests rely on it. *)
let run ?(luts = []) ?(feedback_prev = []) ?(widths : Widths.t option)
    (dp : Graph.t) ~(inputs : (string * int64) list) : result =
  let regs : (Instr.vreg, int64) Hashtbl.t = Hashtbl.create 128 in
  let snx_values : (string, int64) Hashtbl.t = Hashtbl.create 4 in
  let read r =
    match Hashtbl.find_opt regs r with
    | Some v -> v
    | None -> errf "dp_eval: register v%d read before definition" r
  in
  let lpr name =
    match List.assoc_opt name feedback_prev with
    | Some v -> v
    | None -> (
      match
        List.find_opt
          (fun (n, _, _) -> String.equal n name)
          dp.Graph.proc.Proc.feedbacks
      with
      | Some (_, kind, init) -> truncate kind init
      | None -> errf "dp_eval: unknown feedback signal %s" name)
  in
  let lut name v =
    match List.assoc_opt name luts with
    | Some f -> f v
    | None -> errf "dp_eval: unknown lookup table %s" name
  in
  List.iter
    (fun (p : Proc.port) ->
      match List.assoc_opt p.Proc.port_name inputs with
      | Some v ->
        Hashtbl.replace regs p.Proc.port_reg (truncate p.Proc.port_kind v)
      | None -> errf "dp_eval: missing input %s" p.Proc.port_name)
    dp.Graph.input_ports;
  (* Division on a not-taken branch must not trap: evaluate speculative
     lanes with a harmless fallback, exactly like hardware where the unused
     lane's result is discarded by the mux. *)
  let eval_guarded (i : Instr.instr) (operands : int64 list) : int64 =
    let wide = i.Instr.kind.Roccc_cfront.Ast.bits > 32 in
    match i.Instr.op, operands with
    | Instr.Div, [ _; b ] when Int64.equal b 0L -> Int64.neg 1L
    | Instr.Rem, [ a; b ] when Int64.equal b 0L -> a
    (* wide operators run through the decomposed behavioural models the
       hardware instantiates (partial products + carry-save compression,
       block-pipelined add) so the differential checker co-runs the
       decomposition against the plain VM semantics; both are exactly the
       int64 operation mod 2^64 *)
    | Instr.Mul, [ a; b ] when wide -> Roccc_ip_wide.Wide.csa_mul a b
    | Instr.Add, [ a; b ] when wide -> Roccc_ip_wide.Wide.block_add a b
    | Instr.Sub, [ a; b ] when wide ->
      Roccc_ip_wide.Wide.block_add a (Int64.neg b)
    | op, _ -> Instr.eval_op ~lut ~lpr op operands
  in
  List.iter
    (fun (n : Graph.node) ->
      List.iter
        (fun (i : Instr.instr) ->
          let operands = List.map read i.Instr.srcs in
          match i.Instr.op, i.Instr.dst with
          | Instr.Snx name, None -> (
            match operands with
            | [ v ] -> Hashtbl.replace snx_values name (truncate i.Instr.kind v)
            | _ -> errf "dp_eval: snx arity")
          | op, Some dst ->
            let v = eval_guarded { i with Instr.op } operands in
            let v = truncate i.Instr.kind v in
            let v =
              match widths with
              | Some w ->
                let bits =
                  min (Widths.width w dst) i.Instr.kind.Roccc_cfront.Ast.bits
                in
                Roccc_util.Bits.truncate
                  ~signed:i.Instr.kind.Roccc_cfront.Ast.signed bits v
              | None -> v
            in
            Hashtbl.replace regs dst v
          | _, None -> errf "dp_eval: instruction without destination")
        n.Graph.instrs)
    dp.Graph.nodes;
  let outputs =
    List.map
      (fun (p : Proc.port) ->
        ( p.Proc.port_name,
          truncate p.Proc.port_kind (read p.Proc.port_reg) ))
      dp.Graph.output_ports
  in
  let feedback_next =
    List.filter_map
      (fun (name, _, _) ->
        Option.map (fun v -> name, v) (Hashtbl.find_opt snx_values name))
      dp.Graph.proc.Proc.feedbacks
  in
  { outputs; feedback_next }

(** Iterate the data path over an input stream, threading feedback values. *)
let run_stream ?(luts = []) (dp : Graph.t)
    (stream : (string * int64) list list) : result list =
  let feedback_prev = ref [] in
  List.map
    (fun inputs ->
      let r = run ~luts ~feedback_prev:!feedback_prev dp ~inputs in
      let merged =
        r.feedback_next
        @ List.filter
            (fun (n, _) -> not (List.mem_assoc n r.feedback_next))
            !feedback_prev
      in
      feedback_prev := merged;
      r)
    stream
