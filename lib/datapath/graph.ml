(** The data-path graph (paper §4.2.2): a leveled DAG of nodes. Soft nodes
    come from CFG nodes and "will have the same behavior on a CPU compared
    with the whole data path on a FPGA"; mux and pipe nodes are hard nodes —
    "they only appear in hardware and have no equivalence in software". *)

module Instr = Roccc_vm.Instr
module Proc = Roccc_vm.Proc

type kind =
  | Soft of Proc.label   (** data path of one CFG node *)
  | Mux_node of Proc.label
      (** hard node: merges alternative branches feeding their common
          successor (node 7 in Figure 6) *)
  | Pipe_node
      (** hard node: copies live variables from the branches' parent to
          their common successor (node 6 in Figure 6) *)
  | Entry_node  (** input operands copied at the entry of the data flow *)
  | Exit_node   (** output operands copied at the exit of the data flow *)

type node = {
  id : int;
  node_kind : kind;
  mutable instrs : Instr.instr list;  (** in dependency order *)
  level : int;                        (** stage index, 0 = entry *)
}

type t = {
  proc : Proc.t;  (** register kinds, feedback declarations, ports *)
  nodes : node list;  (** ascending by level *)
  levels : node list array;
  input_ports : Proc.port list;   (** external inputs feeding level 0 *)
  output_ports : Proc.port list;  (** exit-node copies, by final register *)
}

let kind_name = function
  | Soft l -> Printf.sprintf "soft(L%d)" l
  | Mux_node l -> Printf.sprintf "mux(join L%d)" l
  | Pipe_node -> "pipe"
  | Entry_node -> "entry"
  | Exit_node -> "exit"

let is_hard (n : node) =
  match n.node_kind with
  | Mux_node _ | Pipe_node -> true
  | Soft _ | Entry_node | Exit_node -> false

(** Registers defined inside a node. *)
let node_defs (n : node) : Instr.vreg list =
  List.filter_map (fun (i : Instr.instr) -> i.Instr.dst) n.instrs

(** Registers consumed by a node from outside (its input wires). *)
let node_inputs (n : node) : Instr.vreg list =
  let defs = node_defs n in
  List.concat_map (fun (i : Instr.instr) -> i.Instr.srcs) n.instrs
  |> List.filter (fun r -> not (List.mem r defs))
  |> List.sort_uniq compare

(** Registers produced by [n] and consumed by other nodes (or output ports). *)
let node_outputs (dp : t) (n : node) : Instr.vreg list =
  let defs = node_defs n in
  let used_elsewhere r =
    List.exists
      (fun (m : node) ->
        m.id <> n.id
        && List.exists (fun (i : Instr.instr) -> List.mem r i.Instr.srcs) m.instrs)
      dp.nodes
    || List.exists (fun (p : Proc.port) -> p.Proc.port_reg = r) dp.output_ports
  in
  List.filter used_elsewhere defs |> List.sort_uniq compare

(** Registers that carry compile-time constants (Ldc results, propagated
    through Mov/Cvt) — constant multiplier/shift operands are much cheaper
    in both area and delay. *)
let constant_values (dp : t) : (Instr.vreg, int64) Hashtbl.t =
  let consts = Hashtbl.create 32 in
  List.iter
    (fun (n : node) ->
      List.iter
        (fun (i : Instr.instr) ->
          match i.Instr.op, i.Instr.dst with
          | Instr.Ldc v, Some d -> Hashtbl.replace consts d v
          | (Instr.Mov | Instr.Cvt), Some d -> (
            match i.Instr.srcs with
            | [ s ] -> (
              match Hashtbl.find_opt consts s with
              | Some v -> Hashtbl.replace consts d v
              | None -> ())
            | _ -> ())
          | _ -> ())
        n.instrs)
    dp.nodes;
  consts

let instr_count (dp : t) : int =
  List.fold_left (fun acc n -> acc + List.length n.instrs) 0 dp.nodes

(** Every instruction tagged with its owning node id, flattened in
    (level, node, program) order — topological by construction, the
    canonical instruction order of the timing and pipelining layers. *)
let flatten (dp : t) : (int * Instr.instr) list =
  List.concat_map
    (fun (n : node) -> List.map (fun i -> n.id, i) n.instrs)
    dp.nodes

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                     *)
(* ------------------------------------------------------------------ *)

exception Ill_formed of string

let illf fmt = Printf.ksprintf (fun s -> raise (Ill_formed s)) fmt

(** Structural invariants of a built data path: node ids unique, the
    [levels] index consistent with each node's [level], single assignment
    across the whole graph, and forward dataflow — every operand is an
    external input or is defined at a strictly earlier level, or earlier
    within the same node. Feedback enters through LPR results (ordinary
    definitions), so a well-formed graph is acyclic modulo the LPR/SNX
    feedback registers. Raises {!Ill_formed} on the first violation. *)
let verify (dp : t) : unit =
  let ids = Hashtbl.create 32 in
  List.iter
    (fun n ->
      if Hashtbl.mem ids n.id then illf "datapath: duplicate node id %d" n.id;
      Hashtbl.replace ids n.id ())
    dp.nodes;
  let nlevels = Array.length dp.levels in
  List.iter
    (fun n ->
      if n.level < 0 || n.level >= nlevels then
        illf "datapath: node %d at level %d outside [0,%d)" n.id n.level nlevels;
      if not (List.memq n dp.levels.(n.level)) then
        illf "datapath: node %d missing from its level %d" n.id n.level)
    dp.nodes;
  Array.iteri
    (fun lvl nodes ->
      List.iter
        (fun n ->
          if n.level <> lvl then
            illf "datapath: node %d indexed at level %d but labeled %d" n.id
              lvl n.level)
        nodes)
    dp.levels;
  (* single assignment + definition site (level, node, index) per register *)
  let def_level : (Instr.vreg, int * int * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun n ->
      List.iteri
        (fun k (i : Instr.instr) ->
          match i.Instr.dst with
          | Some d ->
            if Hashtbl.mem def_level d then
              illf "datapath: register v%d defined twice (node %d)" d n.id;
            Hashtbl.replace def_level d (n.level, n.id, k)
          | None -> ())
        n.instrs)
    dp.nodes;
  let inputs = Hashtbl.create 16 in
  List.iter
    (fun (p : Proc.port) -> Hashtbl.replace inputs p.Proc.port_reg ())
    dp.input_ports;
  List.iter
    (fun n ->
      List.iteri
        (fun k (i : Instr.instr) ->
          List.iter
            (fun r ->
              if not (Hashtbl.mem inputs r) then
                match Hashtbl.find_opt def_level r with
                | None ->
                  illf "datapath: node %d uses undefined register v%d" n.id r
                | Some (dl, dnode, dpos) ->
                  if dl > n.level then
                    illf
                      "datapath: node %d (level %d) uses v%d defined at later \
                       level %d"
                      n.id n.level r dl
                  else if dnode = n.id && dpos >= k then
                    illf
                      "datapath: node %d uses v%d before its definition at \
                       level %d"
                      n.id r dl)
            i.Instr.srcs)
        n.instrs)
    dp.nodes;
  List.iter
    (fun (p : Proc.port) ->
      if
        (not (Hashtbl.mem def_level p.Proc.port_reg))
        && not (Hashtbl.mem inputs p.Proc.port_reg)
      then
        illf "datapath: output port %s reads undefined register v%d"
          p.Proc.port_name p.Proc.port_reg)
    dp.output_ports

let copy_count (dp : t) : int =
  List.fold_left
    (fun acc n ->
      acc
      + List.length
          (List.filter
             (fun (i : Instr.instr) -> i.Instr.op = Instr.Mov)
             n.instrs))
    0 dp.nodes

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let to_string (dp : t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "datapath %s: %d nodes in %d levels\n" dp.proc.Proc.pname
       (List.length dp.nodes) (Array.length dp.levels));
  List.iter
    (fun (p : Proc.port) ->
      Buffer.add_string buf
        (Printf.sprintf "  input  %s -> v%d\n" p.Proc.port_name p.Proc.port_reg))
    dp.input_ports;
  List.iter
    (fun (p : Proc.port) ->
      Buffer.add_string buf
        (Printf.sprintf "  output %s <- v%d\n" p.Proc.port_name p.Proc.port_reg))
    dp.output_ports;
  Array.iteri
    (fun lvl nodes ->
      Buffer.add_string buf (Printf.sprintf "level %d:\n" lvl);
      List.iter
        (fun n ->
          Buffer.add_string buf
            (Printf.sprintf "  node %d [%s]\n" n.id (kind_name n.node_kind));
          List.iter
            (fun i ->
              Buffer.add_string buf ("    " ^ Instr.to_string i ^ "\n"))
            n.instrs)
        nodes)
    dp.levels;
  Buffer.contents buf

let to_dot (dp : t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "digraph %s_datapath {\n  rankdir=TB;\n" dp.proc.Proc.pname);
  List.iter
    (fun n ->
      let shape = if is_hard n then "ellipse" else "box" in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=%s,label=\"%d: %s\\n%d instrs\"];\n" n.id
           shape n.id (kind_name n.node_kind) (List.length n.instrs)))
    dp.nodes;
  (* Edges: producer -> consumer per register. *)
  let producer = Hashtbl.create 64 in
  List.iter
    (fun n -> List.iter (fun d -> Hashtbl.replace producer d n.id) (node_defs n))
    dp.nodes;
  let edges = Hashtbl.create 64 in
  List.iter
    (fun n ->
      List.iter
        (fun r ->
          match Hashtbl.find_opt producer r with
          | Some src when src <> n.id -> Hashtbl.replace edges (src, n.id) ()
          | Some _ | None -> ())
        (node_inputs n))
    dp.nodes;
  Hashtbl.iter
    (fun (a, b) () ->
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" a b))
    edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
