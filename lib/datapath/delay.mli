(** Combinational delay estimation per instruction (paper §4.2.3), tuned to
    a Virtex-II speed-grade-5 fabric. *)

val lut_level_ns : float
(** One 4-LUT plus local routing. *)

val carry_per_bit_ns : float
(** Incremental dedicated carry-chain delay. *)

val register_overhead_ns : float
(** Flip-flop clock-to-out plus setup, charged once per pipeline stage. *)

val routing_factor : float
(** Global-routing pessimism applied to logic delay. *)

type staged = {
  stages : int;        (** consecutive pipeline stages the op occupies *)
  per_stage_ns : float;(** combinational delay of each stage *)
}
(** A staged delay descriptor: a pinned multi-stage region. Single-cycle
    operators have [stages = 1] with [per_stage_ns] the classic estimate. *)

val total_ns : staged -> float
(** Total combinational latency across the region. *)

type decomp = Roccc_ip_wide.Wide.decomp = Csa | Addtree
(** Wide-multiplier decomposition: carry-save 3:2 compression tree, or a
    binary adder tree over the partial products. *)

val decomp_name : decomp -> string
val decomp_of_string : string -> decomp option
val all_decomps : decomp list

val default_decomp : decomp
val default_stage_budget : int
(** 0 = the decomposition's natural stage depth, uncapped. *)

val instr_delay :
  ?stage_budget:int ->
  ?decomp:decomp ->
  ?const_operands:int64 option list ->
  Roccc_vm.Instr.opcode ->
  Roccc_vm.Instr.ikind ->
  int list ->
  staged
(** Staged delay descriptor of one instruction. Narrow (<=32-bit result)
    shapes keep the single-cycle model; wide multiplies, adds and divides
    decompose into multi-stage regions via the {!Roccc_ip_wide.Wide} cost
    models, capped at [stage_budget] stages (0 = uncapped — a larger
    budget never increases the per-stage delay). *)

val instr_delay_ns :
  ?stage_budget:int ->
  ?decomp:decomp ->
  ?const_operands:int64 option list ->
  Roccc_vm.Instr.opcode ->
  Roccc_vm.Instr.ikind ->
  int list ->
  float
(** Per-stage delay of {!instr_delay} — for single-cycle shapes exactly the
    classic estimate. [const_operands] marks sources carrying compile-time
    constants: constant multipliers become shift-add trees, constant shifts
    and masks become wiring. *)

val clock_mhz_of_stage_delay : float -> float
(** Achievable clock for a worst-stage combinational delay, including
    routing pessimism and register overhead. *)
