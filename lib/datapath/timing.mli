(** The timed netlist (paper §4.2.3 substrate): every data-path instruction
    annotated with its estimated combinational delay, producer/consumer
    edges, and ASAP/ALAP stage levels under a per-stage combinational budget
    of [target_ns] nanoseconds.

    This layer owns the timing facts shared by the back half of the
    compiler: {!Pipeline} places and retimes latches over it, the VHDL
    generator derives delay chains from the resulting stage assignment, and
    the area model charges pipeline registers from the same latch-bit
    accounting. *)

type tinstr = {
  ti : Roccc_vm.Instr.instr;
  ti_node : int;          (** owning data-path node id *)
  ti_index : int;         (** position in the topological order *)
  ti_delay : float;       (** per-stage combinational delay, ns *)
  ti_stages : int;        (** stages occupied: 1 = single-cycle, >1 = a
                              pinned multi-stage region starting at the
                              assigned stage *)
  mutable asap : int;     (** earliest delay-feasible (start) stage *)
  mutable alap : int;     (** latest stage keeping every consumer feasible *)
}

val region_span : tinstr -> int
(** Extra stage distance a producer's pinned region imposes on consumers:
    [ti_stages] for multi-stage instructions (operands latched at the
    region entry, result registered at the exit), 0 for single-cycle ones
    (consumers may chain in the same stage). *)

type t = {
  dp : Graph.t;
  widths : Widths.t;
  target_ns : float;      (** combinational budget per stage, ns *)
  instrs : tinstr list;   (** topological (level, node, program) order *)
  producer : (Roccc_vm.Instr.vreg, tinstr) Hashtbl.t;
  consumers : (Roccc_vm.Instr.vreg, tinstr list) Hashtbl.t;
  asap_stage_count : int; (** stages the ASAP schedule occupies *)
}

val worst_instr_delay_ns :
  ?stage_budget:int -> ?decomp:Delay.decomp -> Graph.t -> Widths.t -> float
(** The largest single-instruction *per-stage* combinational delay in the
    data path — a lower bound on any achievable stage delay under greedy
    chunking, computed in O(instructions) without building the netlist.
    The autotuner's cheap costing tier
    ({!Roccc_fpga.Area.quick_clock_mhz}) prices a candidate's clock from
    it. *)

val build :
  ?target_ns:float -> ?stage_budget:int -> ?decomp:Delay.decomp ->
  Graph.t -> Widths.t -> t
(** Annotate the data path: per-instruction staged delays from {!Delay}
    (constant operands detected via {!Graph.constant_values}), ASAP levels
    by greedy delay chunking — multi-stage instructions open pinned
    regions with zero mobility — and ALAP levels by the backward mirror
    within the ASAP stage count (clamped so mobility is never negative). *)

val mobility : tinstr -> int
(** [alap - asap]: the number of stages the instruction can slide without
    lengthening the schedule. 0 = on a critical chain. *)

val reg_width : t -> Roccc_vm.Instr.vreg -> int
(** Physical width of a register (inferred width, 32-bit C default for
    registers outside the analyzed set). Shared by every latch-bit count. *)

val latch_bits :
  t -> stage_of:(tinstr -> int) -> stage_count:int -> int
(** Total pipeline-register bits implied by a stage assignment: each live
    register is charged [width × boundaries-crossed] to its furthest use;
    output-port registers are carried to the final boundary. *)

val feedback_bits : t -> int
(** SNX register bits (one register per declared feedback signal). *)

val stage_delays :
  t -> stage_of:(tinstr -> int) -> stage_count:int -> float array
(** Worst combinational path per stage under a stage assignment: operands
    produced in the same stage arrive at their producer's finish time,
    earlier or external operands at the stage boundary. A multi-stage
    region charges its per-stage delay to every stage it occupies. *)

val edge_slack :
  t -> stage_of:(tinstr -> int) -> tinstr -> Roccc_vm.Instr.vreg -> int
(** Latch boundaries the value [r] crosses to reach this consumer — the
    per-edge register cost the retimer minimizes. *)

val feedback_paths : t -> (string * tinstr list) list
(** Per feedback signal, the instructions on its LPR-to-SNX path (forward
    reachability from the LPRs ∩ backward reachability from the SNXs, plus
    the LPRs). The pipeliner collapses each path to one stage and the
    retimer pins it. *)
