(** Control-flow graph library over VM procedures — the Machine-SUIF CFG
    library equivalent (paper reference [14]): successors/predecessors,
    reverse postorder, dominators (Cooper-Harvey-Kennedy) and dominance
    frontiers. *)

module Proc = Roccc_vm.Proc

type t = {
  proc : Proc.t;
  labels : Proc.label array;
  succ : (Proc.label, Proc.label list) Hashtbl.t;
  pred : (Proc.label, Proc.label list) Hashtbl.t;
  rpo : Proc.label array;  (** reverse postorder from entry *)
  rpo_index : (Proc.label, int) Hashtbl.t;
  idom : (Proc.label, Proc.label) Hashtbl.t;
  order : Proc.label array;
      (** dense block order: reverse postorder, then unreachable blocks in
          program order — the index space of the data-flow engine *)
  order_index : (Proc.label, int) Hashtbl.t;
  succ_idx : int array array;  (** successors of [order.(i)], as indices *)
  pred_idx : int array array;  (** predecessors of [order.(i)], as indices *)
}

val build : Proc.t -> t

val num_blocks : t -> int
(** Blocks in the dense order (reachable and unreachable). *)

val index_of : t -> Proc.label -> int
(** A label's dense order index. Raises [Not_found] for unknown labels. *)

val successors : t -> Proc.label -> Proc.label list
val predecessors : t -> Proc.label -> Proc.label list
val entry_label : t -> Proc.label

val immediate_dominator : t -> Proc.label -> Proc.label option
(** [None] for the entry block. *)

val dominates : t -> Proc.label -> Proc.label -> bool
(** Reflexive dominance. *)

val dominance_frontiers : t -> (Proc.label, Proc.label list) Hashtbl.t

val blocks_rpo : t -> Proc.block list
(** Blocks in reverse postorder. *)

val to_dot : t -> string
(** DOT rendering for debugging and figure dumps. *)
