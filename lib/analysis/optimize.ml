(** Back-end optimization passes over SSA-form procedures, run before
    data-path construction:

    - copy propagation: uses of a Mov result read the source directly;
    - local value numbering: within a block, identical pure computations
      (same opcode, same sources, same kind) share one instruction —
      backed by the available-expressions analysis for validation;
    - dead-code elimination: instructions whose results reach no output
      port, no SNX, no phi and no branch are dropped.

    All three shrink the generated circuit without changing behaviour; the
    area ablation in the bench quantifies the effect. *)

module Proc = Roccc_vm.Proc
module Instr = Roccc_vm.Instr
module Bitset = Roccc_util.Bitset

(* ------------------------------------------------------------------ *)
(* Copy propagation                                                    *)
(* ------------------------------------------------------------------ *)

(* In SSA form a Mov dst <- src means dst and src are the same value with
   the same kind; redirect all readers to src. Cvt is NOT propagated (it
   changes width). Keeps the Movs themselves; DCE removes the dead ones. *)
let propagate_copies (proc : Proc.t) : int =
  let alias : (Instr.vreg, Instr.vreg) Hashtbl.t = Hashtbl.create 32 in
  let rec resolve r =
    match Hashtbl.find_opt alias r with
    | Some r' -> resolve r'
    | None -> r
  in
  List.iter
    (fun (b : Proc.block) ->
      List.iter
        (fun (i : Instr.instr) ->
          match i.Instr.op, i.Instr.dst, i.Instr.srcs with
          | Instr.Mov, Some d, [ s ]
            when Roccc_cfront.Ast.equal_ikind i.Instr.kind
                   (Proc.reg_kind proc s) ->
            Hashtbl.replace alias d (resolve s)
          | _ -> ())
        b.Proc.instrs)
    proc.Proc.blocks;
  let rewrites = ref 0 in
  let rewrite r =
    let r' = resolve r in
    if r' <> r then incr rewrites;
    r'
  in
  List.iter
    (fun (b : Proc.block) ->
      b.Proc.phis <-
        List.map
          (fun (p : Proc.phi) ->
            { p with
              Proc.phi_args =
                List.map (fun (l, r) -> l, rewrite r) p.Proc.phi_args })
          b.Proc.phis;
      b.Proc.instrs <-
        List.map
          (fun (i : Instr.instr) ->
            { i with Instr.srcs = List.map rewrite i.Instr.srcs })
          b.Proc.instrs;
      match b.Proc.term with
      | Proc.Branch (r, l1, l2) -> b.Proc.term <- Proc.Branch (rewrite r, l1, l2)
      | Proc.Jump _ | Proc.Ret -> ())
    proc.Proc.blocks;
  (* outputs may point at a copy *)
  proc.Proc.outputs <-
    List.map
      (fun (p : Proc.port) -> { p with Proc.port_reg = resolve p.Proc.port_reg })
      proc.Proc.outputs;
  !rewrites

(* ------------------------------------------------------------------ *)
(* Local value numbering                                               *)
(* ------------------------------------------------------------------ *)

let pure_op = function
  | Instr.Add | Instr.Sub | Instr.Mul | Instr.Div | Instr.Rem | Instr.Shl
  | Instr.Shr | Instr.Band | Instr.Bor | Instr.Bxor | Instr.Bnot | Instr.Neg
  | Instr.Slt | Instr.Sle | Instr.Sgt | Instr.Sge | Instr.Seq | Instr.Sne
  | Instr.Land | Instr.Lor | Instr.Lnot | Instr.Ldc _ | Instr.Cvt
  | Instr.Mux | Instr.Lut _ -> true
  | Instr.Mov | Instr.Lpr _ | Instr.Snx _ -> false

let value_key (i : Instr.instr) : string option =
  if not (pure_op i.Instr.op) then None
  else
    let srcs =
      if Instr.is_commutative i.Instr.op then List.sort compare i.Instr.srcs
      else i.Instr.srcs
    in
    Some
      (Printf.sprintf "%s|%s|%s%d"
         (Instr.opcode_name i.Instr.op)
         (String.concat "," (List.map string_of_int srcs))
         (if i.Instr.kind.Roccc_cfront.Ast.signed then "s" else "u")
         i.Instr.kind.Roccc_cfront.Ast.bits)

(* Within each block, replace a recomputation with a Mov from the first
   instance (SSA keeps this sound: sources cannot be redefined). A fixpoint
   with copy propagation then collapses the Movs. *)
let value_number (proc : Proc.t) : int =
  let replaced = ref 0 in
  List.iter
    (fun (b : Proc.block) ->
      let seen : (string, Instr.vreg) Hashtbl.t = Hashtbl.create 16 in
      b.Proc.instrs <-
        List.map
          (fun (i : Instr.instr) ->
            match value_key i, i.Instr.dst with
            | Some key, Some d -> (
              match Hashtbl.find_opt seen key with
              | Some first ->
                incr replaced;
                Instr.make ~dst:d Instr.Mov [ first ] i.Instr.kind
              | None ->
                Hashtbl.replace seen key d;
                i)
            | _ -> i)
          b.Proc.instrs)
    proc.Proc.blocks;
  !replaced

(* ------------------------------------------------------------------ *)
(* Dead code elimination                                               *)
(* ------------------------------------------------------------------ *)

let eliminate_dead (proc : Proc.t) : int =
  (* roots: output ports, SNX sources, branch conditions, phi args.
     Liveness marking runs on the packed-bitset substrate of the data-flow
     engine: membership and insertion are single word ops. *)
  let live = Bitset.create (Dataflow.reg_universe proc) in
  let work = ref [] in
  let mark r =
    if not (Bitset.mem live r) then begin
      Bitset.set live r;
      work := r :: !work
    end
  in
  List.iter (fun (p : Proc.port) -> mark p.Proc.port_reg) proc.Proc.outputs;
  List.iter
    (fun (b : Proc.block) ->
      List.iter
        (fun (i : Instr.instr) ->
          match i.Instr.op with
          | Instr.Snx _ -> List.iter mark i.Instr.srcs
          | _ -> ())
        b.Proc.instrs;
      match b.Proc.term with
      | Proc.Branch (r, _, _) -> mark r
      | Proc.Jump _ | Proc.Ret -> ())
    proc.Proc.blocks;
  (* transitive closure over defs *)
  let def_srcs : (Instr.vreg, Instr.vreg list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (b : Proc.block) ->
      List.iter
        (fun (p : Proc.phi) ->
          Hashtbl.replace def_srcs p.Proc.phi_dst
            (List.map snd p.Proc.phi_args))
        b.Proc.phis;
      List.iter
        (fun (i : Instr.instr) ->
          match i.Instr.dst with
          | Some d -> Hashtbl.replace def_srcs d i.Instr.srcs
          | None -> ())
        b.Proc.instrs)
    proc.Proc.blocks;
  let rec drain () =
    match !work with
    | [] -> ()
    | r :: rest ->
      work := rest;
      List.iter mark (Option.value (Hashtbl.find_opt def_srcs r) ~default:[]);
      drain ()
  in
  drain ();
  let removed = ref 0 in
  List.iter
    (fun (b : Proc.block) ->
      let keep_phi (p : Proc.phi) = Bitset.mem live p.Proc.phi_dst in
      let kept_phis = List.filter keep_phi b.Proc.phis in
      removed := !removed + List.length b.Proc.phis - List.length kept_phis;
      b.Proc.phis <- kept_phis;
      let keep (i : Instr.instr) =
        match i.Instr.op, i.Instr.dst with
        | Instr.Snx _, _ -> true
        | _, Some d -> Bitset.mem live d
        | _, None -> true
      in
      let kept = List.filter keep b.Proc.instrs in
      removed := !removed + List.length b.Proc.instrs - List.length kept;
      b.Proc.instrs <- kept)
    proc.Proc.blocks;
  !removed

(* ------------------------------------------------------------------ *)

type stats = { copies_propagated : int; values_numbered : int; dead_removed : int }

(** Run copy propagation, value numbering and DCE to a fixpoint. *)
let run (proc : Proc.t) : stats =
  let totals = ref { copies_propagated = 0; values_numbered = 0; dead_removed = 0 } in
  let rec loop n =
    if n = 0 then ()
    else begin
      let c = propagate_copies proc in
      let v = value_number proc in
      let c2 = propagate_copies proc in
      let d = eliminate_dead proc in
      totals :=
        { copies_propagated = !totals.copies_propagated + c + c2;
          values_numbered = !totals.values_numbered + v;
          dead_removed = !totals.dead_removed + d };
      if c + v + c2 + d > 0 then loop (n - 1)
    end
  in
  loop 8;
  !totals
