(** Bit-vector data-flow analysis framework — the Machine-SUIF DFA library
    equivalent (paper reference [15]).

    The engine solves block-level GEN/KILL problems on packed bit-vectors
    ({!Roccc_util.Bitset}) over an interned fact universe, with a true
    worklist seeded in reverse postorder for forward problems and postorder
    for backward ones. Successors and predecessors come from the dense
    index arrays {!Cfg.t.succ_idx}/{!Cfg.t.pred_idx}, so the hot loop does
    no hashing and terminates on worklist emptiness — there is no sweep
    budget.

    The classic set-based interface ([problem] over [Set.Make(Int)]) is
    kept as the specification layer: {!solve} lowers such a problem onto
    the dense engine. {!Reference} preserves the original naive full-sweep
    solver and analysis shapes for differential testing and benchmarking
    against the engine. *)

module Proc = Roccc_vm.Proc
module Instr = Roccc_vm.Instr
module Bitset = Roccc_util.Bitset
module IS = Set.Make (Int)

type direction = Forward | Backward
type confluence = Union | Intersection

(** A block-level problem: GEN/KILL per block plus direction and meet. *)
type problem = {
  direction : direction;
  confluence : confluence;
  gen : Proc.block -> IS.t;
  kill : Proc.block -> IS.t;
  init : IS.t;           (** value at the boundary (entry or exit) *)
  universe : IS.t;       (** top for intersection problems *)
}

type solution = {
  live_in : (Proc.label, IS.t) Hashtbl.t;   (* IN sets *)
  live_out : (Proc.label, IS.t) Hashtbl.t;  (* OUT sets *)
}

let in_of (s : solution) l = Option.value (Hashtbl.find_opt s.live_in l) ~default:IS.empty
let out_of (s : solution) l = Option.value (Hashtbl.find_opt s.live_out l) ~default:IS.empty

(* ------------------------------------------------------------------ *)
(* Dense engine                                                        *)
(* ------------------------------------------------------------------ *)

(** A problem already lowered onto bit-vectors: one GEN/KILL vector per
    {!Cfg.t.order} index over an interned universe of [dp_universe] facts. *)
type dense_problem = {
  dp_direction : direction;
  dp_confluence : confluence;
  dp_universe : int;
  dp_gen : Bitset.t array;
  dp_kill : Bitset.t array;
  dp_init : Bitset.t;    (** boundary value (entry or exit) *)
}

type dense_solution = {
  ds_in : Bitset.t array;     (* per Cfg order index *)
  ds_out : Bitset.t array;
  ds_order : Proc.label array;
  ds_index : (Proc.label, int) Hashtbl.t;
  ds_visits : int;            (* nodes dequeued before the worklist drained *)
}

let ds_in_of (s : dense_solution) (l : Proc.label) : Bitset.t =
  s.ds_in.(Hashtbl.find s.ds_index l)

let ds_out_of (s : dense_solution) (l : Proc.label) : Bitset.t =
  s.ds_out.(Hashtbl.find s.ds_index l)

(** Worklist solver. The worklist is a FIFO of order indices with on-work
    flags, seeded in reverse postorder (forward) or postorder (backward);
    a node is requeued only when the value feeding its dependents changed,
    and the solver stops when the list drains. *)
let solve_dense (g : Cfg.t) (p : dense_problem) : dense_solution =
  let n = Array.length g.Cfg.order in
  let u = p.dp_universe in
  let start () =
    let b = Bitset.create u in
    (match p.dp_confluence with
    | Union -> ()
    | Intersection -> Bitset.fill_all b);
    b
  in
  let in_sets = Array.init n (fun _ -> start ()) in
  let out_sets = Array.init n (fun _ -> start ()) in
  let queue = Queue.create () in
  let on_work = Array.make n false in
  let enqueue i =
    if not on_work.(i) then begin
      on_work.(i) <- true;
      Queue.add i queue
    end
  in
  (* Seed order: the order array is reverse postorder followed by the
     unreachable blocks, so forward problems enqueue it as-is and backward
     problems enqueue it reversed (postorder first). *)
  (match p.dp_direction with
  | Forward -> for i = 0 to n - 1 do enqueue i done
  | Backward -> for i = n - 1 downto 0 do enqueue i done);
  let visits = ref 0 in
  (* meet into [dst] over the given neighbor values; boundary nodes (no
     neighbors) take the problem's init value, matching the set-based
     specification. *)
  let meet_into dst (neighbors : int array) (values : Bitset.t array) =
    if Array.length neighbors = 0 then Bitset.blit ~src:p.dp_init ~dst
    else begin
      Bitset.blit ~src:values.(neighbors.(0)) ~dst;
      for k = 1 to Array.length neighbors - 1 do
        match p.dp_confluence with
        | Union -> ignore (Bitset.union_into ~dst values.(neighbors.(k)))
        | Intersection -> ignore (Bitset.inter_into ~dst values.(neighbors.(k)))
      done
    end
  in
  let tmp = Bitset.create u in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    on_work.(i) <- false;
    incr visits;
    match p.dp_direction with
    | Forward ->
      (* IN = meet over predecessors' OUT (entry is pinned to init) *)
      if i = 0 then Bitset.blit ~src:p.dp_init ~dst:in_sets.(i)
      else meet_into in_sets.(i) g.Cfg.pred_idx.(i) out_sets;
      (* OUT = GEN ∪ (IN \ KILL) *)
      Bitset.blit ~src:in_sets.(i) ~dst:tmp;
      ignore (Bitset.diff_into ~dst:tmp p.dp_kill.(i));
      ignore (Bitset.union_into ~dst:tmp p.dp_gen.(i));
      if not (Bitset.equal tmp out_sets.(i)) then begin
        Bitset.blit ~src:tmp ~dst:out_sets.(i);
        Array.iter enqueue g.Cfg.succ_idx.(i)
      end
    | Backward ->
      (* OUT = meet over successors' IN (exit nodes take init) *)
      meet_into out_sets.(i) g.Cfg.succ_idx.(i) in_sets;
      (* IN = GEN ∪ (OUT \ KILL) *)
      Bitset.blit ~src:out_sets.(i) ~dst:tmp;
      ignore (Bitset.diff_into ~dst:tmp p.dp_kill.(i));
      ignore (Bitset.union_into ~dst:tmp p.dp_gen.(i));
      if not (Bitset.equal tmp in_sets.(i)) then begin
        Bitset.blit ~src:tmp ~dst:in_sets.(i);
        Array.iter enqueue g.Cfg.pred_idx.(i)
      end
  done;
  { ds_in = in_sets;
    ds_out = out_sets;
    ds_order = g.Cfg.order;
    ds_index = g.Cfg.order_index;
    ds_visits = !visits }

let is_of_bitset (b : Bitset.t) : IS.t = Bitset.fold IS.add b IS.empty

let solution_of_dense (d : dense_solution) : solution =
  let n = Array.length d.ds_order in
  let live_in = Hashtbl.create n and live_out = Hashtbl.create n in
  Array.iteri
    (fun i l ->
      Hashtbl.replace live_in l (is_of_bitset d.ds_in.(i));
      Hashtbl.replace live_out l (is_of_bitset d.ds_out.(i)))
    d.ds_order;
  { live_in; live_out }

(** Lower a set-based problem onto the dense engine: evaluate GEN/KILL per
    block once into packed vectors over the smallest universe containing
    every mentioned fact. *)
let dense_of_problem (g : Cfg.t) (p : problem) : dense_problem =
  let blocks = Array.map (Proc.find_block g.Cfg.proc) g.Cfg.order in
  let gen_s = Array.map p.gen blocks in
  let kill_s = Array.map p.kill blocks in
  let max_of s acc = match IS.max_elt_opt s with None -> acc | Some m -> max m acc in
  let u =
    1
    + Array.fold_left (fun acc s -> max_of s acc)
        (Array.fold_left (fun acc s -> max_of s acc)
           (max_of p.init (max_of p.universe (-1)))
           kill_s)
        gen_s
  in
  let to_bits s =
    let b = Bitset.create u in
    IS.iter (fun i -> Bitset.set b i) s;
    b
  in
  { dp_direction = p.direction;
    dp_confluence = p.confluence;
    dp_universe = u;
    dp_gen = Array.map to_bits gen_s;
    dp_kill = Array.map to_bits kill_s;
    dp_init = to_bits p.init }

(** Solve a set-based problem with the dense worklist engine. *)
let solve (g : Cfg.t) (p : problem) : solution =
  solution_of_dense (solve_dense g (dense_of_problem g p))

(* ------------------------------------------------------------------ *)
(* Shared fact numbering                                               *)
(* ------------------------------------------------------------------ *)

(* Upward-exposed uses of a block: used before (re)defined, scanning forward.
   Phi arguments count as uses in the *predecessor*, so here we treat a
   block's own phis as definitions only. *)
let block_ue_uses (b : Proc.block) : IS.t =
  let defined = ref IS.empty in
  List.iter (fun (p : Proc.phi) -> defined := IS.add p.Proc.phi_dst !defined) b.Proc.phis;
  let uses = ref IS.empty in
  List.iter
    (fun (i : Instr.instr) ->
      List.iter
        (fun s -> if not (IS.mem s !defined) then uses := IS.add s !uses)
        i.Instr.srcs;
      match i.Instr.dst with
      | Some d -> defined := IS.add d !defined
      | None -> ())
    b.Proc.instrs;
  (match b.Proc.term with
  | Proc.Branch (r, _, _) ->
    if not (IS.mem r !defined) then uses := IS.add r !uses
  | Proc.Jump _ | Proc.Ret -> ());
  !uses

let block_all_defs (b : Proc.block) : IS.t =
  IS.of_list (Proc.block_defs b)

(** Registers form the fact universe for liveness: the smallest bound above
    every register mentioned anywhere in the procedure. *)
let reg_universe (proc : Proc.t) : int =
  let m = ref (-1) in
  let see r = if r > !m then m := r in
  Hashtbl.iter (fun r _ -> see r) proc.Proc.reg_kinds;
  List.iter (fun (p : Proc.port) -> see p.Proc.port_reg) proc.Proc.inputs;
  List.iter (fun (p : Proc.port) -> see p.Proc.port_reg) proc.Proc.outputs;
  List.iter
    (fun (b : Proc.block) ->
      List.iter
        (fun (phi : Proc.phi) ->
          see phi.Proc.phi_dst;
          List.iter (fun (_, r) -> see r) phi.Proc.phi_args)
        b.Proc.phis;
      List.iter
        (fun (i : Instr.instr) ->
          (match i.Instr.dst with Some d -> see d | None -> ());
          List.iter see i.Instr.srcs)
        b.Proc.instrs;
      match b.Proc.term with
      | Proc.Branch (r, _, _) -> see r
      | Proc.Jump _ | Proc.Ret -> ())
    proc.Proc.blocks;
  !m + 1

(** Definition sites are numbered globally; [def_of i] gives (site, reg). *)
type def_site = { site_id : int; site_block : Proc.label; site_reg : Instr.vreg }

let definition_sites (proc : Proc.t) : def_site list =
  let id = ref 0 in
  List.concat_map
    (fun (b : Proc.block) ->
      let phi_defs =
        List.map
          (fun (p : Proc.phi) ->
            let s = { site_id = !id; site_block = b.Proc.label; site_reg = p.Proc.phi_dst } in
            incr id;
            s)
          b.Proc.phis
      in
      let instr_defs =
        List.filter_map
          (fun (i : Instr.instr) ->
            match i.Instr.dst with
            | Some d ->
              let s = { site_id = !id; site_block = b.Proc.label; site_reg = d } in
              incr id;
              Some s
            | None -> None)
          b.Proc.instrs
      in
      phi_defs @ instr_defs)
    proc.Proc.blocks

(* Expressions keyed by (opcode, srcs); identified with the first instruction
   index computing them. Conservative: any redefinition of an operand kills. *)
type expr_key = string

let instr_key (i : Instr.instr) : expr_key option =
  match i.Instr.op with
  | Instr.Mov | Instr.Ldc _ | Instr.Lpr _ | Instr.Snx _ -> None
  | op ->
    let srcs =
      if Instr.is_commutative op then List.sort compare i.Instr.srcs
      else i.Instr.srcs
    in
    Some
      (Printf.sprintf "%s(%s)"
         (Instr.opcode_name op)
         (String.concat "," (List.map string_of_int srcs)))

(* ------------------------------------------------------------------ *)
(* Live variables                                                      *)
(* ------------------------------------------------------------------ *)

(** Live-variable analysis on registers, dense form: facts are register
    numbers. Output-port registers are live at exit; phi uses are injected
    as live-out of the matching predecessor after the solve. *)
let liveness_dense (g : Cfg.t) : dense_solution =
  let proc = g.Cfg.proc in
  let u = reg_universe proc in
  let n = Array.length g.Cfg.order in
  let gen = Array.init n (fun _ -> Bitset.create u) in
  let kill = Array.init n (fun _ -> Bitset.create u) in
  for i = 0 to n - 1 do
    let b = Proc.find_block proc g.Cfg.order.(i) in
    let defined = kill.(i) and uses = gen.(i) in
    (* scan forward: a use counts only while its register is not yet
       (re)defined in the block; phis define at the top *)
    List.iter (fun (p : Proc.phi) -> Bitset.set defined p.Proc.phi_dst) b.Proc.phis;
    List.iter
      (fun (instr : Instr.instr) ->
        List.iter
          (fun s -> if not (Bitset.mem defined s) then Bitset.set uses s)
          instr.Instr.srcs;
        match instr.Instr.dst with
        | Some d -> Bitset.set defined d
        | None -> ())
      b.Proc.instrs;
    match b.Proc.term with
    | Proc.Branch (r, _, _) -> if not (Bitset.mem defined r) then Bitset.set uses r
    | Proc.Jump _ | Proc.Ret -> ()
  done;
  let init = Bitset.create u in
  List.iter
    (fun (p : Proc.port) -> Bitset.set init p.Proc.port_reg)
    proc.Proc.outputs;
  let sol =
    solve_dense g
      { dp_direction = Backward;
        dp_confluence = Union;
        dp_universe = u;
        dp_gen = gen;
        dp_kill = kill;
        dp_init = init }
  in
  (* Patch in edge-carried phi uses: a phi argument is live-out of the
     predecessor it flows from, and live-in there unless defined locally. *)
  List.iter
    (fun (b : Proc.block) ->
      List.iter
        (fun (phi : Proc.phi) ->
          List.iter
            (fun (pred_label, src) ->
              let pi = Hashtbl.find g.Cfg.order_index pred_label in
              Bitset.set sol.ds_out.(pi) src;
              if not (Bitset.mem kill.(pi) src) then
                Bitset.set sol.ds_in.(pi) src)
            phi.Proc.phi_args)
        b.Proc.phis)
    proc.Proc.blocks;
  sol

(** Live registers per block (set-based view of {!liveness_dense}). *)
let liveness (g : Cfg.t) : solution = solution_of_dense (liveness_dense g)

(* ------------------------------------------------------------------ *)
(* Reaching definitions                                                *)
(* ------------------------------------------------------------------ *)

(** Classic reaching definitions over definition sites, dense form: facts
    are site ids; a block generates the last site per register it defines
    and kills every site of every register it defines. *)
let reaching_dense (g : Cfg.t) : dense_solution * def_site list =
  let proc = g.Cfg.proc in
  let sites = definition_sites proc in
  let u = List.length sites in
  let n = Array.length g.Cfg.order in
  (* one pass over the numbering: group by block and index by register *)
  let by_block : def_site list array = Array.make n [] in
  let sites_of_reg : (Instr.vreg, int list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let bi = Hashtbl.find g.Cfg.order_index s.site_block in
      by_block.(bi) <- s :: by_block.(bi);
      let cur = Option.value (Hashtbl.find_opt sites_of_reg s.site_reg) ~default:[] in
      Hashtbl.replace sites_of_reg s.site_reg (s.site_id :: cur))
    sites;
  let gen = Array.init n (fun _ -> Bitset.create u) in
  let kill = Array.init n (fun _ -> Bitset.create u) in
  for i = 0 to n - 1 do
    (* by_block.(i) is reversed program order: the first site seen per
       register is the block's last definition of it — the GEN site. *)
    let last_of_reg = Hashtbl.create 8 in
    List.iter
      (fun s ->
        if not (Hashtbl.mem last_of_reg s.site_reg) then begin
          Hashtbl.replace last_of_reg s.site_reg ();
          Bitset.set gen.(i) s.site_id
        end)
      by_block.(i);
    List.iter
      (fun s ->
        List.iter (fun id -> Bitset.set kill.(i) id)
          (Option.value (Hashtbl.find_opt sites_of_reg s.site_reg) ~default:[]))
      by_block.(i)
  done;
  let sol =
    solve_dense g
      { dp_direction = Forward;
        dp_confluence = Union;
        dp_universe = u;
        dp_gen = gen;
        dp_kill = kill;
        dp_init = Bitset.create u }
  in
  sol, sites

let reaching_definitions (g : Cfg.t) : solution * def_site list =
  let d, sites = reaching_dense g in
  solution_of_dense d, sites

(* ------------------------------------------------------------------ *)
(* Available expressions                                               *)
(* ------------------------------------------------------------------ *)

(** Available-expression analysis, dense form: facts are interned
    expression ids; any redefinition of an operand kills the expression.
    Returns the solution and the expression numbering. *)
let available_dense (g : Cfg.t) : dense_solution * (expr_key, int) Hashtbl.t =
  let proc = g.Cfg.proc in
  let numbering : (expr_key, int) Hashtbl.t = Hashtbl.create 32 in
  let operands : Instr.vreg list list ref = ref [] in  (* per id, reversed *)
  let next = ref 0 in
  List.iter
    (fun (b : Proc.block) ->
      List.iter
        (fun (i : Instr.instr) ->
          match instr_key i with
          | Some k when not (Hashtbl.mem numbering k) ->
            Hashtbl.replace numbering k !next;
            operands := i.Instr.srcs :: !operands;
            incr next
          | Some _ | None -> ())
        b.Proc.instrs)
    proc.Proc.blocks;
  let u = !next in
  (* invert the operand lists once: register -> expression ids using it *)
  let using : (Instr.vreg, int list) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun rev_id srcs ->
      let id = u - 1 - rev_id in
      List.iter
        (fun r ->
          let cur = Option.value (Hashtbl.find_opt using r) ~default:[] in
          if not (List.mem id cur) then Hashtbl.replace using r (id :: cur))
        srcs)
    !operands;
  let kill_reg bits r =
    List.iter (fun id -> Bitset.set bits id)
      (Option.value (Hashtbl.find_opt using r) ~default:[])
  in
  let n = Array.length g.Cfg.order in
  let gen = Array.init n (fun _ -> Bitset.create u) in
  let kill = Array.init n (fun _ -> Bitset.create u) in
  let killed_by_reg = Bitset.create u in
  for i = 0 to n - 1 do
    let b = Proc.find_block proc g.Cfg.order.(i) in
    let avail = gen.(i) in
    List.iter
      (fun (instr : Instr.instr) ->
        (match instr.Instr.dst with
        | Some d ->
          Bitset.clear_all killed_by_reg;
          kill_reg killed_by_reg d;
          ignore (Bitset.diff_into ~dst:avail killed_by_reg);
          kill_reg kill.(i) d
        | None -> ());
        match instr_key instr with
        | Some k -> Bitset.set avail (Hashtbl.find numbering k)
        | None -> ())
      b.Proc.instrs;
    (* phi destinations also (re)define registers *)
    List.iter (fun (p : Proc.phi) -> kill_reg kill.(i) p.Proc.phi_dst) b.Proc.phis
  done;
  let sol =
    solve_dense g
      { dp_direction = Forward;
        dp_confluence = Intersection;
        dp_universe = u;
        dp_gen = gen;
        dp_kill = kill;
        dp_init = Bitset.create u }
  in
  sol, numbering

let available_expressions (g : Cfg.t) : solution * (expr_key, int) Hashtbl.t =
  let d, numbering = available_dense g in
  solution_of_dense d, numbering

(* ------------------------------------------------------------------ *)
(* Reference implementation                                            *)
(* ------------------------------------------------------------------ *)

(** The original set-based shapes, kept as the differential-testing oracle
    and the benchmark baseline: a full-sweep iterate-until-stable solver
    over [Set.Make(Int)] with [Hashtbl]-of-set state, and the quadratic
    GEN/KILL construction the analyses used before the dense engine. *)
module Reference = struct
  (** Naive solver: sweep every block until nothing changes. *)
  let solve (g : Cfg.t) (p : problem) : solution =
    let blocks = g.Cfg.proc.Proc.blocks in
    let in_sets = Hashtbl.create 16 and out_sets = Hashtbl.create 16 in
    let start_value =
      match p.confluence with Union -> IS.empty | Intersection -> p.universe
    in
    List.iter
      (fun (b : Proc.block) ->
        Hashtbl.replace in_sets b.Proc.label start_value;
        Hashtbl.replace out_sets b.Proc.label start_value)
      blocks;
    let meet values =
      match values, p.confluence with
      | [], Union -> IS.empty
      | [], Intersection -> p.init
      | v :: vs, Union -> List.fold_left IS.union v vs
      | v :: vs, Intersection -> List.fold_left IS.inter v vs
    in
    let transfer (b : Proc.block) x =
      IS.union (p.gen b) (IS.diff x (p.kill b))
    in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (b : Proc.block) ->
          let l = b.Proc.label in
          match p.direction with
          | Forward ->
            let preds = Cfg.predecessors g l in
            let in_v =
              if l = Cfg.entry_label g then p.init
              else meet (List.map (fun q -> Hashtbl.find out_sets q) preds)
            in
            let out_v = transfer b in_v in
            if not (IS.equal in_v (Hashtbl.find in_sets l)) then begin
              Hashtbl.replace in_sets l in_v;
              changed := true
            end;
            if not (IS.equal out_v (Hashtbl.find out_sets l)) then begin
              Hashtbl.replace out_sets l out_v;
              changed := true
            end
          | Backward ->
            let succs = Cfg.successors g l in
            let out_v =
              if succs = [] then p.init
              else meet (List.map (fun q -> Hashtbl.find in_sets q) succs)
            in
            let in_v = transfer b out_v in
            if not (IS.equal out_v (Hashtbl.find out_sets l)) then begin
              Hashtbl.replace out_sets l out_v;
              changed := true
            end;
            if not (IS.equal in_v (Hashtbl.find in_sets l)) then begin
              Hashtbl.replace in_sets l in_v;
              changed := true
            end)
        blocks
    done;
    { live_in = in_sets; live_out = out_sets }

  let liveness (g : Cfg.t) : solution =
    let proc = g.Cfg.proc in
    let exit_live =
      IS.of_list (List.map (fun (p : Proc.port) -> p.Proc.port_reg) proc.Proc.outputs)
    in
    let phi_uses_of_pred = Hashtbl.create 16 in
    List.iter
      (fun (b : Proc.block) ->
        List.iter
          (fun (phi : Proc.phi) ->
            List.iter
              (fun (pred_label, src) ->
                let cur =
                  Option.value (Hashtbl.find_opt phi_uses_of_pred pred_label)
                    ~default:IS.empty
                in
                Hashtbl.replace phi_uses_of_pred pred_label (IS.add src cur))
              phi.Proc.phi_args)
          b.Proc.phis)
      proc.Proc.blocks;
    let problem =
      { direction = Backward;
        confluence = Union;
        gen = block_ue_uses;
        kill = block_all_defs;
        init = exit_live;
        universe = IS.empty }
    in
    let sol = solve g problem in
    Hashtbl.iter
      (fun pred_label uses ->
        let cur = out_of sol pred_label in
        Hashtbl.replace sol.live_out pred_label (IS.union cur uses);
        let b = Proc.find_block proc pred_label in
        let defs = block_all_defs b in
        let flow_through = IS.diff uses defs in
        Hashtbl.replace sol.live_in pred_label
          (IS.union (in_of sol pred_label) flow_through))
      phi_uses_of_pred;
    sol

  (** Classic reaching definitions with the original per-block [List.filter]
      over the whole site list (quadratic GEN/KILL construction). *)
  let reaching_definitions (g : Cfg.t) : solution * def_site list =
    let proc = g.Cfg.proc in
    let sites = definition_sites proc in
    let sites_of_block l = List.filter (fun s -> s.site_block = l) sites in
    let sites_of_reg r = List.filter (fun s -> s.site_reg = r) sites in
    let gen b =
      let per_reg = Hashtbl.create 8 in
      List.iter
        (fun s -> Hashtbl.replace per_reg s.site_reg s.site_id)
        (sites_of_block b.Proc.label);
      Hashtbl.fold (fun _ v acc -> IS.add v acc) per_reg IS.empty
    in
    let kill b =
      let defs = IS.of_list (Proc.block_defs b) in
      IS.fold
        (fun r acc ->
          List.fold_left (fun acc s -> IS.add s.site_id acc) acc (sites_of_reg r))
        defs IS.empty
    in
    let problem =
      { direction = Forward;
        confluence = Union;
        gen;
        kill;
        init = IS.empty;
        universe = IS.empty }
    in
    solve g problem, sites

  (** Available expressions with the original textual-key rescan: killing a
      register re-parses every interned key (quadratic construction). *)
  let available_expressions (g : Cfg.t) : solution * (expr_key, int) Hashtbl.t =
    let proc = g.Cfg.proc in
    let numbering : (expr_key, int) Hashtbl.t = Hashtbl.create 32 in
    let next = ref 0 in
    let universe = ref IS.empty in
    List.iter
      (fun (b : Proc.block) ->
        List.iter
          (fun i ->
            match instr_key i with
            | Some k when not (Hashtbl.mem numbering k) ->
              Hashtbl.replace numbering k !next;
              universe := IS.add !next !universe;
              incr next
            | Some _ | None -> ())
          b.Proc.instrs)
      proc.Proc.blocks;
    let exprs_using_reg r =
      Hashtbl.fold
        (fun key id acc ->
          let token = string_of_int r in
          let uses =
            String.split_on_char '(' key |> function
            | [ _; args ] ->
              String.split_on_char ')' args |> List.hd
              |> String.split_on_char ','
              |> List.exists (String.equal token)
            | _ -> false
          in
          if uses then IS.add id acc else acc)
        numbering IS.empty
    in
    let gen (b : Proc.block) =
      let avail = ref IS.empty in
      List.iter
        (fun (i : Instr.instr) ->
          (match i.Instr.dst with
          | Some d -> avail := IS.diff !avail (exprs_using_reg d)
          | None -> ());
          match instr_key i with
          | Some k -> avail := IS.add (Hashtbl.find numbering k) !avail
          | None -> ())
        b.Proc.instrs;
      !avail
    in
    let kill (b : Proc.block) =
      IS.fold
        (fun d acc -> IS.union acc (exprs_using_reg d))
        (block_all_defs b) IS.empty
    in
    let problem =
      { direction = Forward;
        confluence = Intersection;
        gen;
        kill;
        init = IS.empty;
        universe = !universe }
    in
    solve g problem, numbering
end
