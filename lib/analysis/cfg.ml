(** Control-flow graph library over VM procedures — the Machine-SUIF CFG
    library equivalent (paper references [14]): successor/predecessor maps,
    reverse postorder, dominators and dominance frontiers.

    Besides the label-keyed maps, [build] precomputes a dense block order
    (reverse postorder first, then any unreachable blocks in program order)
    with successor/predecessor arrays of order indices — the layout the
    bit-vector data-flow engine in {!Dataflow} iterates over without any
    hashing on its hot path. *)

module Proc = Roccc_vm.Proc
module Bitset = Roccc_util.Bitset

type t = {
  proc : Proc.t;
  labels : Proc.label array;              (* in block order *)
  succ : (Proc.label, Proc.label list) Hashtbl.t;
  pred : (Proc.label, Proc.label list) Hashtbl.t;
  rpo : Proc.label array;                 (* reverse postorder from entry *)
  rpo_index : (Proc.label, int) Hashtbl.t;
  idom : (Proc.label, Proc.label) Hashtbl.t;  (* immediate dominators *)
  order : Proc.label array;               (* rpo ++ unreachable blocks *)
  order_index : (Proc.label, int) Hashtbl.t;
  succ_idx : int array array;             (* successors as order indices *)
  pred_idx : int array array;             (* predecessors as order indices *)
}

let successors (g : t) (l : Proc.label) : Proc.label list =
  Option.value (Hashtbl.find_opt g.succ l) ~default:[]

let predecessors (g : t) (l : Proc.label) : Proc.label list =
  Option.value (Hashtbl.find_opt g.pred l) ~default:[]

let entry_label (g : t) : Proc.label = (Proc.entry g.proc).Proc.label

let num_blocks (g : t) : int = Array.length g.order

let index_of (g : t) (l : Proc.label) : int = Hashtbl.find g.order_index l

(* Depth-first postorder from the entry. Unreachable blocks are excluded. *)
let compute_rpo (proc : Proc.t) : Proc.label array =
  let visited = Hashtbl.create 16 in
  let post = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.replace visited l ();
      List.iter dfs (Proc.successors (Proc.find_block proc l));
      post := l :: !post
    end
  in
  dfs (Proc.entry proc).Proc.label;
  Array.of_list !post

(* Cooper-Harvey-Kennedy iterative dominator algorithm. *)
let compute_idom (rpo : Proc.label array)
    (pred : (Proc.label, Proc.label list) Hashtbl.t) :
    (Proc.label, Proc.label) Hashtbl.t =
  let n = Array.length rpo in
  let index = Hashtbl.create n in
  Array.iteri (fun i l -> Hashtbl.replace index l i) rpo;
  let idom = Array.make n (-1) in
  if n > 0 then idom.(0) <- 0;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while !a > !b do a := idom.(!a) done;
      while !b > !a do b := idom.(!b) done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let preds =
        List.filter_map
          (fun p -> Hashtbl.find_opt index p)
          (Option.value (Hashtbl.find_opt pred rpo.(i)) ~default:[])
      in
      let processed = List.filter (fun p -> idom.(p) >= 0) preds in
      match processed with
      | [] -> ()
      | first :: rest ->
        let new_idom = List.fold_left intersect first rest in
        if idom.(i) <> new_idom then begin
          idom.(i) <- new_idom;
          changed := true
        end
    done
  done;
  let table = Hashtbl.create n in
  Array.iteri
    (fun i l -> if idom.(i) >= 0 then Hashtbl.replace table l rpo.(idom.(i)))
    rpo;
  table

let build (proc : Proc.t) : t =
  let succ = Hashtbl.create 16 and pred = Hashtbl.create 16 in
  List.iter
    (fun (b : Proc.block) ->
      let ss = Proc.successors b in
      Hashtbl.replace succ b.Proc.label ss;
      List.iter
        (fun s ->
          let cur = Option.value (Hashtbl.find_opt pred s) ~default:[] in
          Hashtbl.replace pred s (cur @ [ b.Proc.label ]))
        ss)
    proc.Proc.blocks;
  let rpo = compute_rpo proc in
  let rpo_index = Hashtbl.create 16 in
  Array.iteri (fun i l -> Hashtbl.replace rpo_index l i) rpo;
  let idom = compute_idom rpo pred in
  (* Dense order: reachable blocks in reverse postorder, then any
     unreachable blocks in program order, so every block has an index and
     the reachable prefix is already a good worklist seed. *)
  let unreachable =
    List.filter_map
      (fun (b : Proc.block) ->
        if Hashtbl.mem rpo_index b.Proc.label then None else Some b.Proc.label)
      proc.Proc.blocks
  in
  let order = Array.append rpo (Array.of_list unreachable) in
  let order_index = Hashtbl.create (Array.length order) in
  Array.iteri (fun i l -> Hashtbl.replace order_index l i) order;
  let idx_list ls =
    Array.of_list (List.map (fun l -> Hashtbl.find order_index l) ls)
  in
  let succ_idx =
    Array.map
      (fun l -> idx_list (Option.value (Hashtbl.find_opt succ l) ~default:[]))
      order
  in
  let pred_idx =
    Array.map
      (fun l -> idx_list (Option.value (Hashtbl.find_opt pred l) ~default:[]))
      order
  in
  { proc;
    labels = Array.of_list (List.map (fun b -> b.Proc.label) proc.Proc.blocks);
    succ; pred; rpo; rpo_index; idom;
    order; order_index; succ_idx; pred_idx }

let immediate_dominator (g : t) (l : Proc.label) : Proc.label option =
  match Hashtbl.find_opt g.idom l with
  | Some d when d <> l -> Some d
  | Some _ | None -> None

(** Does [a] dominate [b]? (Reflexive.) *)
let dominates (g : t) (a : Proc.label) (b : Proc.label) : bool =
  let rec walk b =
    if a = b then true
    else
      match immediate_dominator g b with
      | Some d -> walk d
      | None -> false
  in
  walk b

(** Dominance frontier of every node (Cytron et al. via idom walk-up).
    Per-node members accumulate in a bitset (O(1) dedup) and a reversed
    list, materialized once — discovery order is preserved but the old
    [List.mem]-plus-append quadratic rescan per edge is gone. *)
let dominance_frontiers (g : t) : (Proc.label, Proc.label list) Hashtbl.t =
  let n = Array.length g.rpo in
  let members = Array.init n (fun _ -> Bitset.create n) in
  let rev_df = Array.make n [] in
  Array.iteri
    (fun li l ->
      let preds = predecessors g l in
      if List.length preds >= 2 then
        List.iter
          (fun p ->
            (* Only predecessors reachable from entry participate. *)
            match Hashtbl.find_opt g.rpo_index p with
            | None -> ()
            | Some pi ->
              let idom_l = Hashtbl.find_opt g.idom l in
              let rec runner r ri =
                if Some r <> idom_l then begin
                  if not (Bitset.mem members.(ri) li) then begin
                    Bitset.set members.(ri) li;
                    rev_df.(ri) <- l :: rev_df.(ri)
                  end;
                  match Hashtbl.find_opt g.idom r with
                  | Some d when d <> r -> runner d (Hashtbl.find g.rpo_index d)
                  | Some _ | None -> ()
                end
              in
              runner p pi)
          preds)
    g.rpo;
  let df = Hashtbl.create 16 in
  Array.iteri (fun ri r -> Hashtbl.replace df r (List.rev rev_df.(ri))) g.rpo;
  df

(** Blocks in reverse postorder (execution-friendly order). *)
let blocks_rpo (g : t) : Proc.block list =
  Array.to_list g.rpo |> List.map (Proc.find_block g.proc)

(** Render the CFG as a DOT graph (for debugging and the figure dumps). *)
let to_dot (g : t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" g.proc.Proc.pname);
  List.iter
    (fun (b : Proc.block) ->
      Buffer.add_string buf
        (Printf.sprintf "  L%d [shape=box,label=\"L%d (%d instrs)\"];\n"
           b.Proc.label b.Proc.label
           (List.length b.Proc.instrs));
      List.iter
        (fun s -> Buffer.add_string buf (Printf.sprintf "  L%d -> L%d;\n" b.Proc.label s))
        (Proc.successors b))
    g.proc.Proc.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
