(** Static single assignment construction — the Machine-SUIF SSA library
    equivalent (paper §4.2.1: after it, "every virtual register is assigned
    only once"). Minimal SSA via iterated dominance frontiers, then
    dominator-tree renaming; output ports are rebound to the names reaching
    the exit block. *)

exception Error of string

val convert : Roccc_vm.Proc.t -> Cfg.t
(** Convert the procedure to SSA form in place (blocks and phis are
    mutated; output ports rebound); returns the rebuilt CFG. *)

val verify : Roccc_vm.Proc.t -> unit
(** Check the single-assignment invariant; raises {!Error} if any register
    has two definitions. *)

val verify_dominance : Roccc_vm.Proc.t -> unit
(** Check that every definition dominates its uses (phi uses checked at
    the corresponding predecessor, output ports at each return block).
    Raises {!Error} on violation. *)
