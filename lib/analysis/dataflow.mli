(** Bit-vector data-flow analysis framework — the Machine-SUIF DFA library
    equivalent (paper reference [15]): a worklist solver over packed
    bit-vectors ({!Roccc_util.Bitset}), instantiated for live variables,
    reaching definitions and available expressions.

    The worklist is seeded in reverse postorder for forward problems and
    postorder for backward ones, walks the dense successor/predecessor
    index arrays precomputed by {!Cfg.build}, and terminates on worklist
    emptiness — there is no sweep budget. The set-based [problem] record
    remains the specification layer; {!Reference} keeps the original naive
    full-sweep solver and analysis shapes for differential testing and
    benchmarking. *)

module Proc = Roccc_vm.Proc
module Instr = Roccc_vm.Instr
module Bitset = Roccc_util.Bitset
module IS : Set.S with type elt = int

type direction = Forward | Backward
type confluence = Union | Intersection

(** A block-level problem: GEN/KILL per block plus direction and meet. *)
type problem = {
  direction : direction;
  confluence : confluence;
  gen : Proc.block -> IS.t;
  kill : Proc.block -> IS.t;
  init : IS.t;  (** value at the boundary (entry or exit) *)
  universe : IS.t;  (** top for intersection problems *)
}

type solution = {
  live_in : (Proc.label, IS.t) Hashtbl.t;
  live_out : (Proc.label, IS.t) Hashtbl.t;
}

val in_of : solution -> Proc.label -> IS.t
val out_of : solution -> Proc.label -> IS.t

(** {1 Dense engine} *)

(** A problem lowered onto bit-vectors: one GEN/KILL vector per
    {!Cfg.t.order} index over an interned universe of [dp_universe]
    facts. *)
type dense_problem = {
  dp_direction : direction;
  dp_confluence : confluence;
  dp_universe : int;
  dp_gen : Bitset.t array;
  dp_kill : Bitset.t array;
  dp_init : Bitset.t;  (** boundary value (entry or exit) *)
}

type dense_solution = {
  ds_in : Bitset.t array;  (** per {!Cfg.t.order} index *)
  ds_out : Bitset.t array;
  ds_order : Proc.label array;
  ds_index : (Proc.label, int) Hashtbl.t;
  ds_visits : int;
      (** nodes dequeued before the worklist drained — the convergence
          effort; a reducible forward problem visits each node O(1) times *)
}

val ds_in_of : dense_solution -> Proc.label -> Bitset.t
val ds_out_of : dense_solution -> Proc.label -> Bitset.t

val solve_dense : Cfg.t -> dense_problem -> dense_solution
(** The worklist solver. *)

val solution_of_dense : dense_solution -> solution
val dense_of_problem : Cfg.t -> problem -> dense_problem

val solve : Cfg.t -> problem -> solution
(** Lower the set-based problem onto the dense engine and solve. *)

(** {1 Analyses} *)

val liveness : Cfg.t -> solution
(** Live registers per block; output ports are live at exit and phi uses
    count as live-out of the matching predecessor. *)

val liveness_dense : Cfg.t -> dense_solution

type def_site = {
  site_id : int;
  site_block : Proc.label;
  site_reg : Instr.vreg;
}

val definition_sites : Proc.t -> def_site list

val reg_universe : Proc.t -> int
(** Smallest bound above every register mentioned in the procedure — the
    liveness fact universe. *)

val reaching_definitions : Cfg.t -> solution * def_site list
(** Classic reaching definitions over numbered definition sites. *)

val reaching_dense : Cfg.t -> dense_solution * def_site list

type expr_key = string

val available_expressions : Cfg.t -> solution * (expr_key, int) Hashtbl.t
(** Available pure expressions (keyed by opcode + operands), intersection
    confluence; returns the solution and the expression numbering. *)

val available_dense : Cfg.t -> dense_solution * (expr_key, int) Hashtbl.t

(** {1 Reference implementation}

    The pre-engine shapes, kept as the differential-testing oracle and the
    benchmark baseline: a full-sweep iterate-until-stable solver over
    [Set.Make(Int)] and the quadratic GEN/KILL constructions. *)
module Reference : sig
  val solve : Cfg.t -> problem -> solution
  val liveness : Cfg.t -> solution
  val reaching_definitions : Cfg.t -> solution * def_site list
  val available_expressions : Cfg.t -> solution * (expr_key, int) Hashtbl.t
end
