(** Static single assignment construction — the Machine-SUIF SSA library
    equivalent (paper reference [16]). "Before fed to ROCCC's passes, the
    virtual machine IR first undergoes Machine-SUIF Static Single Assignment
    and Control Flow Graph transformations. At this point ... every virtual
    register is assigned only once" (paper §4.2.1).

    Minimal-SSA via iterated dominance frontiers, then dominator-tree
    renaming. Output ports are rebound to the SSA name reaching the exit. *)

module Proc = Roccc_vm.Proc
module Instr = Roccc_vm.Instr
module Bitset = Roccc_util.Bitset

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* Dominator-tree children map derived from idom. *)
let dom_children (g : Cfg.t) : (Proc.label, Proc.label list) Hashtbl.t =
  let children = Hashtbl.create 16 in
  Array.iter
    (fun l ->
      match Cfg.immediate_dominator g l with
      | Some d ->
        let cur = Option.value (Hashtbl.find_opt children d) ~default:[] in
        Hashtbl.replace children d (cur @ [ l ])
      | None -> ())
    g.Cfg.rpo;
  children

(** Convert [proc] to SSA form in place (blocks/phis are mutated; output port
    registers are rebound). Returns the rebuilt CFG. *)
let convert (proc : Proc.t) : Cfg.t =
  let g = Cfg.build proc in
  let df = Cfg.dominance_frontiers g in
  (* Labels form the interned universe of the phi-insertion bitsets. *)
  let label_universe =
    1 + List.fold_left (fun m (b : Proc.block) -> max m b.Proc.label) (-1)
          proc.Proc.blocks
  in
  (* ---- collect definition blocks per register ---- *)
  let def_blocks : (Instr.vreg, Bitset.t) Hashtbl.t = Hashtbl.create 32 in
  let def_count : (Instr.vreg, int) Hashtbl.t = Hashtbl.create 32 in
  let note_def r l =
    (match Hashtbl.find_opt def_blocks r with
    | Some bs -> Bitset.set bs l
    | None ->
      let bs = Bitset.create label_universe in
      Bitset.set bs l;
      Hashtbl.replace def_blocks r bs);
    Hashtbl.replace def_count r
      (1 + Option.value (Hashtbl.find_opt def_count r) ~default:0)
  in
  let entry_l = Cfg.entry_label g in
  (* Input-port bindings count as a definition at entry. *)
  List.iter (fun (p : Proc.port) -> note_def p.Proc.port_reg entry_l) proc.Proc.inputs;
  List.iter
    (fun (b : Proc.block) ->
      List.iter
        (fun (i : Instr.instr) ->
          match i.Instr.dst with
          | Some d -> note_def d b.Proc.label
          | None -> ())
        b.Proc.instrs)
    proc.Proc.blocks;
  (* ---- phi insertion at iterated dominance frontiers ---- *)
  let needs_phi r =
    Option.value (Hashtbl.find_opt def_count r) ~default:0 > 1
  in
  Hashtbl.iter
    (fun r blocks ->
      if needs_phi r then begin
        (* iterated dominance frontier of the definition blocks, with the
           placed/seen sets as bitsets over the label universe *)
        let placed = Bitset.create label_universe in
        let seen = Bitset.create label_universe in
        let work = ref (Bitset.elements blocks) in
        while !work <> [] do
          match !work with
          | [] -> ()
          | l :: rest ->
            work := rest;
            let frontier = Option.value (Hashtbl.find_opt df l) ~default:[] in
            List.iter
              (fun y ->
                if not (Bitset.mem placed y) then begin
                  Bitset.set placed y;
                  let b = Proc.find_block proc y in
                  b.Proc.phis <-
                    b.Proc.phis
                    @ [ { Proc.phi_dst = r;  (* renamed below *)
                          phi_args = [];
                          phi_kind = Proc.reg_kind proc r } ];
                  if not (Bitset.mem seen y) then begin
                    Bitset.set seen y;
                    work := y :: !work
                  end
                end)
              frontier
        done
      end)
    def_blocks;
  (* Remember each phi's original variable before renaming. *)
  let phi_orig : (Proc.label * int, Instr.vreg) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (b : Proc.block) ->
      List.iteri
        (fun i (phi : Proc.phi) ->
          Hashtbl.replace phi_orig (b.Proc.label, i) phi.Proc.phi_dst)
        b.Proc.phis)
    proc.Proc.blocks;
  (* ---- renaming ---- *)
  let stacks : (Instr.vreg, Instr.vreg list) Hashtbl.t = Hashtbl.create 32 in
  let top r =
    match Hashtbl.find_opt stacks r with
    | Some (v :: _) -> v
    | Some [] | None -> r  (* undefined-before-use: keep original (inputs) *)
  in
  let push r v =
    let cur = Option.value (Hashtbl.find_opt stacks r) ~default:[] in
    Hashtbl.replace stacks r (v :: cur)
  in
  let pop r =
    match Hashtbl.find_opt stacks r with
    | Some (_ :: rest) -> Hashtbl.replace stacks r rest
    | Some [] | None -> ()
  in
  let fresh_version r =
    let k = Proc.reg_kind proc r in
    Proc.fresh_reg proc k
  in
  (* end-of-block variable environment, used to fill phi args and to find
     the exit-reaching version of each output. *)
  let block_end_version : (Proc.label * Instr.vreg, Instr.vreg) Hashtbl.t =
    Hashtbl.create 32
  in
  let children = dom_children g in
  let multi r = needs_phi r in
  let interesting = Hashtbl.fold (fun r _ acc -> r :: acc) def_blocks [] in
  let rec rename (l : Proc.label) =
    let b = Proc.find_block proc l in
    let pushed = ref [] in
    (* phis define new versions (left-to-right fold: push order matters) *)
    let _, rev_phis =
      List.fold_left
        (fun (i, acc) (phi : Proc.phi) ->
          let orig = Hashtbl.find phi_orig (l, i) in
          let v = fresh_version orig in
          push orig v;
          pushed := orig :: !pushed;
          i + 1, { phi with Proc.phi_dst = v } :: acc)
        (0, []) b.Proc.phis
    in
    b.Proc.phis <- List.rev rev_phis;
    (* instructions: rewrite uses, version defs *)
    let rev_instrs =
      List.fold_left
        (fun acc (i : Instr.instr) ->
          let srcs = List.map top i.Instr.srcs in
          let dst =
            match i.Instr.dst with
            | Some d when multi d ->
              let v = fresh_version d in
              push d v;
              pushed := d :: !pushed;
              Some v
            | Some d ->
              (* single definition: keep the name, but still record it *)
              push d d;
              pushed := d :: !pushed;
              Some d
            | None -> None
          in
          { i with Instr.srcs; dst } :: acc)
        [] b.Proc.instrs
    in
    b.Proc.instrs <- List.rev rev_instrs;
    (* terminator use *)
    (match b.Proc.term with
    | Proc.Branch (r, l1, l2) -> b.Proc.term <- Proc.Branch (top r, l1, l2)
    | Proc.Jump _ | Proc.Ret -> ());
    (* snapshot versions at block end *)
    List.iter
      (fun r -> Hashtbl.replace block_end_version (l, r) (top r))
      interesting;
    (* fill phi args in successors *)
    List.iter
      (fun s ->
        let sb = Proc.find_block proc s in
        sb.Proc.phis <-
          List.mapi
            (fun i (phi : Proc.phi) ->
              let orig = Hashtbl.find phi_orig (s, i) in
              { phi with Proc.phi_args = phi.Proc.phi_args @ [ l, top orig ] })
            sb.Proc.phis)
      (Cfg.successors g l);
    (* recurse into dominator-tree children *)
    List.iter rename (Option.value (Hashtbl.find_opt children l) ~default:[]);
    List.iter pop !pushed
  in
  (* Inputs are live versions of themselves at entry. *)
  List.iter
    (fun (p : Proc.port) -> push p.Proc.port_reg p.Proc.port_reg)
    proc.Proc.inputs;
  rename entry_l;
  (* ---- rebind outputs to exit-reaching versions ---- *)
  let exit_label =
    match
      List.find_opt (fun (b : Proc.block) -> b.Proc.term = Proc.Ret) proc.Proc.blocks
    with
    | Some b -> b.Proc.label
    | None -> errf "ssa: procedure %s has no exit block" proc.Proc.pname
  in
  proc.Proc.outputs <-
    List.map
      (fun (p : Proc.port) ->
        match Hashtbl.find_opt block_end_version (exit_label, p.Proc.port_reg) with
        | Some v -> { p with Proc.port_reg = v }
        | None -> p)
      proc.Proc.outputs;
  Cfg.build proc

(* ------------------------------------------------------------------ *)
(* Verification                                                        *)
(* ------------------------------------------------------------------ *)

(** Check the SSA invariant: every register is assigned exactly once. *)
let verify (proc : Proc.t) : unit =
  let seen = Hashtbl.create 64 in
  let check r where =
    if Hashtbl.mem seen r then
      errf "ssa: register v%d assigned more than once (%s)" r where
    else Hashtbl.replace seen r ()
  in
  List.iter
    (fun (b : Proc.block) ->
      List.iter
        (fun (phi : Proc.phi) ->
          check phi.Proc.phi_dst (Printf.sprintf "phi in L%d" b.Proc.label))
        b.Proc.phis;
      List.iter
        (fun (i : Instr.instr) ->
          match i.Instr.dst with
          | Some d -> check d (Printf.sprintf "instr in L%d" b.Proc.label)
          | None -> ())
        b.Proc.instrs)
    proc.Proc.blocks

(* Defs-dominate-uses: the other half of the SSA invariant. Input ports
   (and the inputs' registers) define at entry; a same-block definition
   must textually precede the use; a cross-block definition must dominate
   the using block. Phi uses are checked against the corresponding
   predecessor, where the value actually flows in. *)
let verify_dominance (proc : Proc.t) : unit =
  let cfg = Cfg.build proc in
  (* def site per register: (block label, position). Phis define at the
     top of their block (position -1); instruction k defines at k. *)
  let defs : (Instr.vreg, Proc.label * int) Hashtbl.t = Hashtbl.create 64 in
  let entry_label = Cfg.entry_label cfg in
  List.iter
    (fun (port : Proc.port) ->
      Hashtbl.replace defs port.Proc.port_reg (entry_label, -1))
    proc.Proc.inputs;
  List.iter
    (fun (b : Proc.block) ->
      List.iter
        (fun (phi : Proc.phi) ->
          Hashtbl.replace defs phi.Proc.phi_dst (b.Proc.label, -1))
        b.Proc.phis;
      List.iteri
        (fun k (i : Instr.instr) ->
          match i.Instr.dst with
          | Some d -> Hashtbl.replace defs d (b.Proc.label, k)
          | None -> ())
        b.Proc.instrs)
    proc.Proc.blocks;
  let check_use ~block ~pos ~what r =
    match Hashtbl.find_opt defs r with
    | None -> errf "ssa: %s uses v%d, which has no definition" what r
    | Some (dl, dpos) ->
      if dl = block then begin
        if dpos >= pos then
          errf "ssa: %s uses v%d before its definition in L%d" what r block
      end
      else if not (Cfg.dominates cfg dl block) then
        errf "ssa: %s uses v%d, defined in L%d which does not dominate L%d"
          what r dl block
  in
  List.iter
    (fun (b : Proc.block) ->
      List.iter
        (fun (phi : Proc.phi) ->
          List.iter
            (fun (pred, r) ->
              (* the value must be available at the end of the predecessor *)
              check_use ~block:pred
                ~pos:(List.length (Proc.find_block proc pred).Proc.instrs)
                ~what:
                  (Printf.sprintf "phi v%d in L%d (edge from L%d)"
                     phi.Proc.phi_dst b.Proc.label pred)
                r)
            phi.Proc.phi_args)
        b.Proc.phis;
      List.iteri
        (fun k (i : Instr.instr) ->
          List.iter
            (check_use ~block:b.Proc.label ~pos:k
               ~what:(Printf.sprintf "instr %d in L%d" k b.Proc.label))
            i.Instr.srcs)
        b.Proc.instrs;
      match b.Proc.term with
      | Proc.Branch (r, _, _) ->
        check_use ~block:b.Proc.label
          ~pos:(List.length b.Proc.instrs)
          ~what:(Printf.sprintf "branch in L%d" b.Proc.label)
          r
      | Proc.Jump _ | Proc.Ret -> ())
    proc.Proc.blocks;
  (* output ports read at Ret: their definition must dominate every Ret
     block (SSA conversion rebinds them to the names reaching the exit) *)
  List.iter
    (fun (b : Proc.block) ->
      match b.Proc.term with
      | Proc.Ret ->
        List.iter
          (fun (port : Proc.port) ->
            check_use ~block:b.Proc.label
              ~pos:(List.length b.Proc.instrs)
              ~what:(Printf.sprintf "output port %s" port.Proc.port_name)
              port.Proc.port_reg)
          proc.Proc.outputs
      | Proc.Jump _ | Proc.Branch _ -> ())
    proc.Proc.blocks
