(* Benchmark harness: regenerates every table and figure of the paper
   (DATE 2005, "Optimized Generation of Data-path from C Codes for FPGAs"),
   runs the ablation studies listed in DESIGN.md, and finishes with
   Bechamel micro-benchmarks of the compiler itself.

   Sections:
     Table 1   - IP vs ROCCC clock/area for the nine kernels
     Figure 1  - the executed pass pipeline
     Figure 2  - execution-model cycle trace (FIR)
     Figure 3  - FIR scalar replacement stages
     Figure 4  - accumulator feedback stages
     Figure 5/6- if_else data path with soft/mux/pipe nodes
     Figure 7  - accumulator data path with the feedback latch
     §5 claims - DCT throughput, smart-buffer reuse
     ref [13]  - compile-time area estimation speed
     Ablations - stage budget, bit widths, mul_acc rewrite, DCT unrolling
     Bechamel  - compile/estimate/simulate timings *)

module Driver = Roccc_core.Driver
module Kernels = Roccc_core.Kernels
module Pass = Roccc_core.Pass
module Cfg = Roccc_analysis.Cfg
module Dataflow = Roccc_analysis.Dataflow
module Proc = Roccc_vm.Proc
module Baselines = Roccc_ip.Baselines
module Engine = Roccc_hw.Engine
module Graph = Roccc_datapath.Graph
module Pipeline = Roccc_datapath.Pipeline
module Area = Roccc_fpga.Area
module Kernel = Roccc_hir.Kernel
module Net = Roccc_net.Net

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let hr () = print_endline (String.make 118 '-')

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

type t1_row = {
  t1_name : string;
  ip_paper : Baselines.perf;
  roccc_paper : Baselines.perf;
  ip_model : Baselines.perf;
  roccc_ours : Baselines.perf;
  verified : bool;
}

(* Operator-style rows compare against bare IP operators (no memory-side
   wrapper); the windowed kernels include their buffers and controllers,
   like the paper's FIR/DCT/wavelet engines. *)
let operator_rows =
  [ "bit_correlator"; "mul_acc"; "udiv"; "square_root"; "cos";
    "arbitrary_lut" ]

let compile_row name : Baselines.perf * bool =
  match name with
  | "wavelet" ->
    (* the engine is the row pass plus the column pass *)
    let c1, _, d1 = Kernels.run Kernels.wavelet in
    let c2, _, d2 = Kernels.run Kernels.wavelet_cols in
    let slices = c1.Driver.area.Area.slices + c2.Driver.area.Area.slices in
    let clock =
      Float.min c1.Driver.area.Area.clock_mhz c2.Driver.area.Area.clock_mhz
    in
    { Baselines.slices; clock_mhz = clock }, d1 = [] && d2 = []
  | _ ->
    let b = Option.get (Kernels.find name) in
    let c, _, diffs = Kernels.run b in
    let slices =
      if List.mem name operator_rows then c.Driver.area.Area.operator_slices
      else c.Driver.area.Area.slices
    in
    ( { Baselines.slices; clock_mhz = c.Driver.area.Area.clock_mhz },
      diffs = [] )

let table1_rows () : t1_row list =
  List.map
    (fun (r : Baselines.row) ->
      let ours, verified = compile_row r.Baselines.name in
      { t1_name = r.Baselines.name;
        ip_paper = r.Baselines.paper_ip;
        roccc_paper = r.Baselines.paper_roccc;
        ip_model =
          Option.value
            (Baselines.model r.Baselines.name)
            ~default:{ Baselines.slices = 0; clock_mhz = 0.0 };
        roccc_ours = ours;
        verified })
    Baselines.paper_table1

let print_table1 rows =
  section "Table 1 - hardware performance: Xilinx IP vs ROCCC-generated";
  Printf.printf "%-15s | %-17s | %-17s | %-17s | %-17s | %-7s %-8s | %-7s %-8s | %s\n"
    "" "paper IP" "paper ROCCC" "model IP" "our ROCCC" "%Clk(p)" "%Area(p)"
    "%Clk" "%Area" "hw=sw";
  Printf.printf "%-15s | %8s %8s | %8s %8s | %8s %8s | %8s %8s |\n" "example"
    "MHz" "slices" "MHz" "slices" "MHz" "slices" "MHz" "slices";
  hr ();
  List.iter
    (fun r ->
      let pclk =
        r.roccc_paper.Baselines.clock_mhz /. r.ip_paper.Baselines.clock_mhz
      in
      let parea =
        float_of_int r.roccc_paper.Baselines.slices
        /. float_of_int r.ip_paper.Baselines.slices
      in
      let oclk =
        r.roccc_ours.Baselines.clock_mhz /. r.ip_model.Baselines.clock_mhz
      in
      let oarea =
        float_of_int r.roccc_ours.Baselines.slices
        /. float_of_int (max 1 r.ip_model.Baselines.slices)
      in
      Printf.printf
        "%-15s | %8.0f %8d | %8.0f %8d | %8.0f %8d | %8.0f %8d | %7.3f \
         %8.2f | %7.3f %8.2f | %s\n"
        r.t1_name r.ip_paper.Baselines.clock_mhz r.ip_paper.Baselines.slices
        r.roccc_paper.Baselines.clock_mhz r.roccc_paper.Baselines.slices
        r.ip_model.Baselines.clock_mhz r.ip_model.Baselines.slices
        r.roccc_ours.Baselines.clock_mhz r.roccc_ours.Baselines.slices pclk
        parea oclk oarea
        (if r.verified then "yes" else "NO"))
    rows;
  hr ();
  let geo f rows =
    let logs = List.map (fun r -> Float.log (f r)) rows in
    Float.exp
      (List.fold_left ( +. ) 0.0 logs /. float_of_int (List.length logs))
  in
  (* aggregate over the rows where the compiler does real work (the LUT rows
     are by construction identical on both sides, as in the paper) *)
  let active =
    List.filter
      (fun r -> r.t1_name <> "cos" && r.t1_name <> "arbitrary_lut")
      rows
  in
  Printf.printf
    "geomean (non-LUT rows): paper area ratio %.2fx, ours %.2fx; paper \
     clock ratio %.2fx, ours %.2fx\n"
    (geo
       (fun r ->
         float_of_int r.roccc_paper.Baselines.slices
         /. float_of_int r.ip_paper.Baselines.slices)
       active)
    (geo
       (fun r ->
         float_of_int r.roccc_ours.Baselines.slices
         /. float_of_int (max 1 r.ip_model.Baselines.slices))
       active)
    (geo
       (fun r ->
         r.roccc_paper.Baselines.clock_mhz /. r.ip_paper.Baselines.clock_mhz)
       active)
    (geo
       (fun r ->
         r.roccc_ours.Baselines.clock_mhz /. r.ip_model.Baselines.clock_mhz)
       active);
  print_endline
    "paper's conclusion: ROCCC-generated circuits take ~2-3x the area of \
     hand IP at comparable clock rates."

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let paper_fir_source = Kernels.paper_fir_source

let paper_acc_source = Kernels.paper_acc_source

let paper_if_else_source = Kernels.paper_if_else_source

let figure1 () =
  section "Figure 1 - ROCCC system overview (executed pass pipeline)";
  let c = Driver.compile ~entry:"fir" paper_fir_source in
  print_endline (Driver.pass_pipeline_figure c)

let figure1_profiling () =
  section "Figure 1 (left box) - code profiling identifies the kernels";
  let app =
    "void app(int A[68], int B[64], int* count) {\n\
    \  int i;\n\
    \  for (i = 0; i < 64; i++) {\n\
    \    B[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];\n\
    \  }\n\
    \  int n;\n\
    \  n = 0;\n\
    \  for (i = 0; i < 64; i++) {\n\
    \    if (B[i] > 100) { n = n + 1; }\n\
    \  }\n\
    \  *count = n;\n\
     }\n"
  in
  let p =
    Roccc_core.Profile.analyze ~entry:"app"
      ~arrays:[ "A", Array.init 68 (fun i -> Int64.of_int (i - 30)) ]
      app
  in
  print_string (Roccc_core.Profile.report p)

let figure2 () =
  section "Figure 2 - the execution model (FIR, cycle-accurate)";
  let c = Driver.compile ~entry:"fir" paper_fir_source in
  let arrays = [ "A", Array.init 21 (fun i -> Int64.of_int i) ] in
  let r = Driver.simulate ~arrays c in
  print_endline
    "off-chip MEM -> BRAM -> smart buffer -> pipelined data path -> BRAM -> \
     off-chip MEM";
  Printf.printf
    "cycles %d | launches %d | latency %d | BRAM reads %d writes %d\n"
    r.Engine.cycles r.Engine.launches r.Engine.pipeline_latency
    r.Engine.memory_reads r.Engine.memory_writes;
  Printf.printf "controller: %s\n"
    (String.concat " -> "
       (List.map
          (fun (cyc, s) -> Printf.sprintf "%s@%d" s cyc)
          r.Engine.controller_trace))

let figure3 () =
  section "Figure 3 - a 5-tap FIR in C (scalar replacement stages)";
  let c = Driver.compile ~entry:"fir" paper_fir_source in
  let k = c.Driver.kernel in
  print_endline "(a) original C code:";
  print_endline (Roccc_cfront.Pretty.func_to_string k.Kernel.original);
  print_endline "\n(b) after scalar replacement:";
  print_endline (Roccc_cfront.Pretty.func_to_string k.Kernel.transformed);
  print_endline "\n(c) the C code fed into the data path generator:";
  print_endline (Roccc_cfront.Pretty.func_to_string k.Kernel.dp)

let figure4 () =
  section "Figure 4 - an accumulator in C (feedback detection stages)";
  let c = Driver.compile ~entry:"acc" paper_acc_source in
  let k = c.Driver.kernel in
  print_endline "(a) original C code:";
  print_endline (Roccc_cfront.Pretty.func_to_string k.Kernel.original);
  print_endline "\n(b) after scalar replacement:";
  print_endline (Roccc_cfront.Pretty.func_to_string k.Kernel.transformed);
  print_endline
    "\n(c) after feedback detection (ROCCC_load_prev / ROCCC_store2next):";
  print_endline (Roccc_cfront.Pretty.func_to_string k.Kernel.dp)

let figure56 () =
  section "Figures 5 & 6 - an alternative branch in C and its data path";
  print_endline "(Figure 5) the C code:";
  print_endline paper_if_else_source;
  let c = Driver.compile ~entry:"if_else" paper_if_else_source in
  print_endline
    "(Figure 6) the data path: soft nodes from CFG nodes; hard mux node \
     between the branches and their successor; hard pipe node carrying live \
     variables:";
  print_endline (Graph.to_string c.Driver.dp)

let figure7 () =
  section "Figure 7 - the accumulator data path (SNX latch feeds LPR)";
  let c = Driver.compile ~entry:"acc" paper_acc_source in
  print_endline (Graph.to_string c.Driver.dp);
  print_endline (Pipeline.describe c.Driver.pipeline)

(* ------------------------------------------------------------------ *)
(* §5 claims                                                           *)
(* ------------------------------------------------------------------ *)

let throughput_section () =
  section "Throughput - DCT (paper: ROCCC 8 outputs/cycle vs IP 1/cycle)";
  let c, r, _ = Kernels.run Kernels.dct in
  Printf.printf
    "our DCT: %d outputs per launch, one launch per cycle in steady state\n"
    (List.length c.Driver.kernel.Kernel.outputs);
  Printf.printf "simulated: %d outputs in %d cycles (latency %d)\n"
    r.Engine.memory_writes r.Engine.cycles r.Engine.pipeline_latency;
  let ours, _ = compile_row "dct" in
  Printf.printf
    "IP comparator: 1 output/cycle => ROCCC throughput advantage %dx at \
     %.0f%% of the IP clock (paper: 73.5%%)\n"
    (List.length c.Driver.kernel.Kernel.outputs)
    (100.0 *. ours.Baselines.clock_mhz
    /. (Option.get (Baselines.model "dct")).Baselines.clock_mhz)

let smart_buffer_section () =
  section "Smart buffer - input data reuse (each datum fetched once)";
  List.iter
    (fun (name, b) ->
      let _c, r, _ = Kernels.run b in
      Printf.printf
        "%-14s: %5d memory reads, window demand %5d elements -> reuse %.2fx\n"
        name r.Engine.memory_reads
        (int_of_float
           (r.Engine.reuse_ratio *. float_of_int r.Engine.memory_reads))
        r.Engine.reuse_ratio)
    [ "fir", Kernels.fir; "wavelet_rows", Kernels.wavelet;
      "bit_correlator", Kernels.bit_correlator ]

let power_section () =
  section "Power estimation (Figure 1's third estimate)";
  Printf.printf "%-15s %8s %10s %10s %10s\n" "kernel" "slices" "dyn mW"
    "static mW" "total mW";
  List.iter
    (fun name ->
      match Kernels.find name with
      | None -> ()
      | Some b ->
        let c = Kernels.compile b in
        let pw = Area.power c.Driver.area in
        Printf.printf "%-15s %8d %10.1f %10.1f %10.1f\n" name
          c.Driver.area.Area.slices pw.Area.dynamic_mw pw.Area.static_mw
          pw.Area.total_mw)
    [ "bit_correlator"; "fir"; "dct"; "square_root"; "wavelet" ];
  print_endline
    "(first-order model: dynamic ~ slices x clock x toggle; the paper's \
     Figure 1 lists power as a compile-time estimate but reports none)"

let area_estimation_section () =
  section "Compile-time area estimation (paper ref [13]: <1 ms, ~5%)";
  List.iter
    (fun name ->
      match Kernels.find name with
      | None -> ()
      | Some b ->
        let c = Kernels.compile b in
        let t0 = Unix.gettimeofday () in
        let iterations = 100 in
        let result = ref 0 in
        for _ = 1 to iterations do
          result := Area.quick_estimate c.Driver.dp
        done;
        let t1 = Unix.gettimeofday () in
        let us = (t1 -. t0) /. float_of_int iterations *. 1e6 in
        Printf.printf
          "%-14s: quick estimate %5d slices vs full model %5d (%.0f us per \
           estimate)\n"
          name !result c.Driver.area.Area.slices us)
    [ "bit_correlator"; "mul_acc"; "fir"; "dct"; "square_root" ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_stage_budget () =
  section "Ablation - pipeline stage budget vs clock and registers (FIR)";
  Printf.printf "%10s %8s %10s %12s\n" "target ns" "stages" "clock MHz"
    "latch bits";
  List.iter
    (fun target_ns ->
      let c =
        Driver.compile
          ~options:{ Driver.default_options with Driver.target_ns }
          ~entry:"fir" paper_fir_source
      in
      Printf.printf "%10.1f %8d %10.1f %12d\n" target_ns
        (Pipeline.latency c.Driver.pipeline)
        c.Driver.pipeline.Pipeline.clock_mhz
        c.Driver.pipeline.Pipeline.latch_bits)
    [ 2.0; 3.0; 5.0; 8.0; 12.0; 50.0 ]

let ablation_bit_widths () =
  section "Ablation - bit-width inference on/off";
  Printf.printf "%-15s %18s %18s %8s\n" "kernel" "inferred (slices)"
    "declared (slices)" "saving";
  List.iter
    (fun name ->
      match Kernels.find name with
      | None -> ()
      | Some b ->
        let on = Kernels.compile b in
        let off =
          Driver.compile
            ~options:
              { (b.Kernels.tune Driver.default_options) with
                Driver.infer_widths = false }
            ~luts:b.Kernels.luts ~entry:b.Kernels.entry b.Kernels.source
        in
        let s_on = on.Driver.area.Area.slices in
        let s_off = off.Driver.area.Area.slices in
        Printf.printf "%-15s %18d %18d %7.0f%%\n" name s_on s_off
          (100.0 *. (1.0 -. (float_of_int s_on /. float_of_int s_off))))
    [ "bit_correlator"; "mul_acc"; "fir"; "dct"; "udiv" ]

let ablation_mul_acc_rewrite () =
  section "Ablation - mul_acc: if/else vs multiply-by-nd (paper §5)";
  (* the paper: rewriting the nd guard as a multiplication used one more
     multiplier but beat the if/else version in area and clock *)
  let if_else_version = Kernels.mul_acc in
  let mult_version =
    "int acc = 0;\n\
     void mul_acc(int12 A[64], int12 B[64], uint1 ND[64], int* out) {\n\
    \  int i;\n\
    \  for (i = 0; i < 64; i++) {\n\
    \    acc = acc + ND[i] * (A[i] * B[i]);\n\
    \  }\n\
    \  *out = acc;\n\
     }\n"
  in
  let c1 = Kernels.compile if_else_version in
  let c2 = Driver.compile ~entry:"mul_acc" mult_version in
  Printf.printf "if/else version    : %4d slices @ %6.1f MHz\n"
    c1.Driver.area.Area.operator_slices c1.Driver.area.Area.clock_mhz;
  Printf.printf "multiply-nd version: %4d slices @ %6.1f MHz\n"
    c2.Driver.area.Area.operator_slices c2.Driver.area.Area.clock_mhz;
  (* equivalence of the two algorithms *)
  let arrays = if_else_version.Kernels.arrays () in
  let r1 = Driver.simulate ~arrays c1 in
  let r2 = Driver.simulate ~arrays c2 in
  Printf.printf "same result: %b\n"
    (r1.Engine.scalar_outputs = r2.Engine.scalar_outputs)

let ablation_dct_unroll () =
  section "Ablation - DCT: fully unrolled block vs streamed row";
  let block = Kernels.compile Kernels.dct in
  (* streamed comparison: one matrix row applied per launch over a sliding
     window — 1 output per cycle, the IP-style schedule *)
  let row = Kernels.dct8_coeff.(1) in
  let streamed_src =
    let terms =
      Array.to_list row
      |> List.mapi (fun n c ->
             if c >= 0 then Printf.sprintf "+ %d*X[i+%d]" c n
             else Printf.sprintf "- %d*X[i+%d]" (-c) n)
      |> String.concat " "
    in
    Printf.sprintf
      "void dct_row(int8 X[15], int19 Y[8]) {\n\
      \  int i;\n\
      \  for (i = 0; i < 8; i++) {\n\
      \    Y[i] = %s;\n\
      \  }\n\
       }\n"
      (String.sub terms 2 (String.length terms - 2))
  in
  let streamed = Driver.compile ~entry:"dct_row" streamed_src in
  Printf.printf
    "block (paper's):   %4d slices, %d outputs/cycle, clock %6.1f MHz\n"
    block.Driver.area.Area.slices
    (List.length block.Driver.kernel.Kernel.outputs)
    block.Driver.area.Area.clock_mhz;
  Printf.printf
    "streamed row:      %4d slices, 1 output/cycle,  clock %6.1f MHz\n"
    streamed.Driver.area.Area.slices streamed.Driver.area.Area.clock_mhz;
  print_endline
    "=> unrolling trades ~8x area for 8x throughput at a similar clock."

let ablation_partial_unroll () =
  section "Ablation - partial unrolling of the FIR loop (area vs throughput)";
  let src =
    "void fir(int8 A[36], int16 C[32]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 32; i++) {\n\
    \    C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];\n\
    \  }\n\
     }\n"
  in
  Printf.printf "%8s %8s %14s %10s %8s\n" "factor" "slices" "outputs/cycle"
    "clock MHz" "cycles";
  let arrays = [ "A", Array.init 36 (fun i -> Int64.of_int i) ] in
  List.iter
    (fun factor ->
      let c =
        Driver.compile
          ~options:
            { Driver.default_options with
              Driver.unroll_outer_factor = factor;
              bus_elements = factor }
          ~entry:"fir" src
      in
      let r = Driver.simulate ~arrays c in
      Printf.printf "%8d %8d %14d %10.1f %8d\n" factor
        c.Driver.area.Area.slices
        (List.length c.Driver.kernel.Kernel.outputs)
        c.Driver.area.Area.clock_mhz r.Engine.cycles)
    [ 1; 2; 4; 8 ]

let ablation_backend_optimize () =
  section "Ablation - back-end CSE/copy-propagation/DCE";
  Printf.printf "%-15s %14s %14s %8s\n" "kernel" "on (slices)" "off (slices)"
    "saving";
  List.iter
    (fun name ->
      match Kernels.find name with
      | None -> ()
      | Some b ->
        let on = Kernels.compile b in
        let off =
          Driver.compile
            ~options:
              { (b.Kernels.tune Driver.default_options) with
                Driver.optimize_vm = false }
            ~luts:b.Kernels.luts ~entry:b.Kernels.entry b.Kernels.source
        in
        let s_on = on.Driver.area.Area.slices in
        let s_off = off.Driver.area.Area.slices in
        Printf.printf "%-15s %14d %14d %7.0f%%\n" name s_on s_off
          (100.0 *. (1.0 -. (float_of_int s_on /. float_of_int s_off))))
    [ "dct"; "fir"; "square_root"; "wavelet" ]

let ablation_loop_fusion () =
  section "Ablation - loop fusion (two filters over one array)";
  let two_loops =
    "void pair(int8 A[36], int16 C[32], int16 E[32]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 32; i++) { C[i] = 3*A[i] + 5*A[i+1] - A[i+4]; }\n\
    \  for (i = 0; i < 32; i++) { E[i] = 2*A[i] + 4*A[i+2] + A[i+3]; }\n\
     }\n"
  in
  let fused = Driver.compile ~entry:"pair" two_loops in
  (match
     Driver.compile
       ~options:{ Driver.default_options with Driver.fuse_loops = false }
       ~entry:"pair" two_loops
   with
  | _ -> Printf.printf "unfused: unexpectedly compiled as one kernel\n"
  | exception Driver.Error msg ->
    Printf.printf "without fusion the pair is rejected: %s\n" msg);
  Printf.printf
    "fused: one loop, %d window input(s) sharing one smart buffer, %d \
     outputs/cycle, %d slices\n"
    (List.length fused.Driver.kernel.Kernel.windows)
    (List.length fused.Driver.kernel.Kernel.outputs)
    fused.Driver.area.Area.slices;
  let arrays = [ "A", Array.init 36 (fun i -> Int64.of_int ((i * 7) - 100)) ] in
  Printf.printf "fused verifies: %b\n"
    (Driver.verify ~arrays fused = [])

let ablation_smart_buffer () =
  section "Ablation - smart buffer vs naive per-iteration fetches";
  List.iter
    (fun (name, b) ->
      let _c, r, _ = Kernels.run b in
      let naive =
        int_of_float
          (r.Engine.reuse_ratio *. float_of_int r.Engine.memory_reads)
      in
      Printf.printf
        "%-14s: smart %5d fetches | naive %5d | traffic saved %.0f%%\n" name
        r.Engine.memory_reads naive
        (100.0 *. (1.0 -. (1.0 /. Float.max 1.0 r.Engine.reuse_ratio))))
    [ "fir", Kernels.fir; "wavelet_rows", Kernels.wavelet ]

(* ------------------------------------------------------------------ *)
(* Data-flow engine - packed bitsets vs the set-based reference        *)
(* ------------------------------------------------------------------ *)

let df_fir_src n =
  Printf.sprintf
    "void fir(int8 A[%d], int16 C[%d]) {\n\
    \  int i;\n\
    \  for (i = 0; i < %d; i++) {\n\
    \    C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];\n\
    \  }\n\
     }\n"
    (n + 4) n n

let df_dct_row_src n =
  let row = Kernels.dct8_coeff.(1) in
  let terms =
    Array.to_list row
    |> List.mapi (fun t c ->
           if c >= 0 then Printf.sprintf "+ %d*X[i+%d]" c t
           else Printf.sprintf "- %d*X[i+%d]" (-c) t)
    |> String.concat " "
  in
  Printf.sprintf
    "void dct_row(int8 X[%d], int19 Y[%d]) {\n\
    \  int i;\n\
    \  for (i = 0; i < %d; i++) {\n\
    \    Y[i] = %s;\n\
    \  }\n\
     }\n"
    (n + 7) n n
    (String.sub terms 2 (String.length terms - 2))

(* run the pipeline up to (and including) SSA construction: the unrolled
   procedure these analyses see is exactly what the optimizer sees *)
let proc_after_ssa ~entry ~options src =
  let upto = ref [] in
  let rec take = function
    | [] -> ()
    | (p : Pass.pass) :: rest ->
      upto := p :: !upto;
      if p.Pass.name <> "ssa-and-cfg" then take rest
  in
  take (Pass.front_passes @ Pass.kernel_passes @ Pass.back_passes);
  let st =
    List.fold_left
      (fun st p -> Pass.step p st)
      (Pass.initial ~options ~entry src)
      (List.rev !upto)
  in
  Option.get st.Pass.st_proc

(* one timed run; sub-50ms measurements are repeated and the best kept *)
let df_time f =
  let once () =
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    Unix.gettimeofday () -. t0
  in
  let first = once () in
  if first >= 0.05 then first
  else begin
    let reps = min 200 (max 3 (int_of_float (0.05 /. Float.max 1e-6 first))) in
    let best = ref first in
    for _ = 1 to reps do
      let t = once () in
      if t < !best then best := t
    done;
    !best
  end

type df_row = {
  df_kernel : string;
  df_unroll : int;
  df_blocks : int;
  df_instrs : int;
  df_regs : int;
  df_times : (string * float * float) list;  (* analysis, reference s, dense s *)
}

let dataflow_section () =
  section
    "Data-flow engine - packed-bitset worklist solver vs set-based reference";
  let workloads =
    [ "fir", df_fir_src 256, [ 16; 64; 256 ];
      "dct_row", df_dct_row_src 256, [ 16; 64; 256 ] ]
  in
  Printf.printf "%-8s %6s %7s %7s %6s | %10s %10s %8s\n" "kernel" "unroll"
    "blocks" "instrs" "regs" "analysis" "ref ms" "speedup";
  hr ();
  let rows =
    List.concat_map
      (fun (name, src, factors) ->
        List.map
          (fun factor ->
            let options =
              { Driver.default_options with
                Driver.unroll_outer_factor = factor;
                bus_elements = factor }
            in
            let proc = proc_after_ssa ~entry:name ~options src in
            let g = Cfg.build proc in
            let times =
              [ ( "liveness",
                  df_time (fun () -> Dataflow.Reference.liveness g),
                  df_time (fun () -> Dataflow.liveness_dense g) );
                ( "reaching",
                  df_time (fun () -> Dataflow.Reference.reaching_definitions g),
                  df_time (fun () -> Dataflow.reaching_dense g) );
                ( "available",
                  df_time (fun () -> Dataflow.Reference.available_expressions g),
                  df_time (fun () -> Dataflow.available_dense g) ) ]
            in
            let row =
              { df_kernel = name;
                df_unroll = factor;
                df_blocks = List.length proc.Proc.blocks;
                df_instrs = List.length (Proc.all_instrs proc);
                df_regs = Hashtbl.length proc.Proc.reg_kinds;
                df_times = times }
            in
            List.iteri
              (fun i (analysis, ref_s, dense_s) ->
                if i = 0 then
                  Printf.printf "%-8s %6d %7d %7d %6d" name factor
                    row.df_blocks row.df_instrs row.df_regs
                else Printf.printf "%-8s %6s %7s %7s %6s" "" "" "" "" "";
                Printf.printf " | %10s %10.3f %7.1fx\n" analysis
                  (1e3 *. ref_s)
                  (ref_s /. Float.max 1e-9 dense_s))
              times;
            row)
          factors)
      workloads
  in
  hr ();
  (* the acceptance gate: liveness and reaching at the deepest unroll *)
  let x256_min =
    rows
    |> List.filter (fun r -> r.df_unroll = 256)
    |> List.concat_map (fun r ->
           List.filter_map
             (fun (a, ref_s, dense_s) ->
               if a = "available" then None
               else Some (ref_s /. Float.max 1e-9 dense_s))
             r.df_times)
    |> List.fold_left Float.min infinity
  in
  Printf.printf
    "minimum x256 liveness/reaching speedup: %.1fx (target >= 5x) -> %s\n"
    x256_min
    (if x256_min >= 5.0 then "ok" else "BELOW TARGET");
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"kernel\": \"%s\", \"unroll\": %d, \"blocks\": %d, \
            \"instrs\": %d, \"regs\": %d, \"analyses\": ["
           r.df_kernel r.df_unroll r.df_blocks r.df_instrs r.df_regs);
      List.iteri
        (fun j (a, ref_s, dense_s) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf
               "{ \"name\": \"%s\", \"reference_s\": %.6f, \"dense_s\": \
                %.6f, \"speedup\": %.2f }"
               a ref_s dense_s
               (ref_s /. Float.max 1e-9 dense_s)))
        r.df_times;
      Buffer.add_string buf
        (Printf.sprintf "] }%s\n" (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"x256_live_reach_speedup_min\": %.2f,\n" x256_min);
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup_ok\": %b\n}\n" (x256_min >= 5.0));
  let oc = open_out "BENCH_dataflow.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_dataflow.json\n"

(* ------------------------------------------------------------------ *)
(* Pipelining - latch-bit / clock Pareto across clock targets          *)
(* ------------------------------------------------------------------ *)

type pl_row = {
  pl_kernel : string;
  pl_target_ns : float;
  pl_stages : int;
  pl_clock_mhz : float;
  pl_greedy_bits : int;
  pl_retimed_bits : int;
  pl_moves : int;
}

let pipeline_section () =
  section
    "Pipelining - slack-based retiming vs greedy latch placement \
     (latch-bit / clock Pareto)";
  let kernels =
    [ "fir", Kernels.fir.Kernels.source, "fir",
      Kernels.fir.Kernels.tune Driver.default_options,
      Kernels.fir.Kernels.luts;
      "dct", Kernels.dct.Kernels.source, "dct",
      Kernels.dct.Kernels.tune Driver.default_options, Kernels.dct.Kernels.luts;
      "acc", Kernels.paper_acc_source, "acc", Driver.default_options, [] ]
  in
  Printf.printf "%-8s %9s %7s %10s | %11s %12s %6s\n" "kernel" "target"
    "stages" "clock" "greedy bits" "retimed bits" "moves";
  hr ();
  let rows =
    List.concat_map
      (fun (name, source, entry, options, luts) ->
        List.map
          (fun tns ->
            let c =
              Driver.compile
                ~options:{ options with Driver.target_ns = tns }
                ~luts ~entry source
            in
            let p = c.Driver.pipeline in
            let row =
              { pl_kernel = name;
                pl_target_ns = tns;
                pl_stages = p.Pipeline.stage_count;
                pl_clock_mhz = p.Pipeline.clock_mhz;
                pl_greedy_bits = p.Pipeline.greedy_latch_bits;
                pl_retimed_bits = p.Pipeline.latch_bits;
                pl_moves = p.Pipeline.retime_moves }
            in
            Printf.printf "%-8s %6.0f ns %7d %6.1f MHz | %11d %12d %6d\n"
              row.pl_kernel row.pl_target_ns row.pl_stages row.pl_clock_mhz
              row.pl_greedy_bits row.pl_retimed_bits row.pl_moves;
            row)
          [ 3.0; 5.0; 8.0 ])
      kernels
  in
  hr ();
  (* the acceptance gates: retiming never spends more latch bits than
     greedy anywhere on the grid, and buys a strict reduction somewhere
     at the default 5 ns target *)
  let never_worse =
    List.for_all (fun r -> r.pl_retimed_bits <= r.pl_greedy_bits) rows
  in
  let strict_at_default =
    List.exists
      (fun r -> r.pl_target_ns = 5.0 && r.pl_retimed_bits < r.pl_greedy_bits)
      rows
  in
  Printf.printf "retimed <= greedy on every (kernel, target): %s\n"
    (if never_worse then "ok" else "VIOLATED");
  Printf.printf "strict reduction at the 5 ns default: %s\n"
    (if strict_at_default then "ok" else "NONE FOUND");
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"kernel\": \"%s\", \"target_ns\": %g, \"stages\": %d, \
            \"clock_mhz\": %.2f, \"greedy_latch_bits\": %d, \
            \"retimed_latch_bits\": %d, \"retime_moves\": %d }%s\n"
           r.pl_kernel r.pl_target_ns r.pl_stages r.pl_clock_mhz
           r.pl_greedy_bits r.pl_retimed_bits r.pl_moves
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"retiming_ok\": %b,\n" never_worse);
  Buffer.add_string buf
    (Printf.sprintf "  \"strict_reduction_at_default\": %b\n}\n"
       strict_at_default);
  let oc = open_out "BENCH_pipeline.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_pipeline.json\n"

(* ------------------------------------------------------------------ *)
(* Batch service - cache and scheduler throughput                      *)
(* ------------------------------------------------------------------ *)

module Service = Roccc_service.Service
module Svc_cache = Roccc_service.Cache
module Scheduler = Roccc_service.Scheduler

let service_section () =
  section "Batch service - pass cache and parallel scheduler (Table 1 jobs)";
  let jobs = Service.table1_jobs () in
  let n_jobs = List.length jobs in
  let time_batch ?cache ~num_domains () =
    let t0 = Unix.gettimeofday () in
    let report = Service.run_batch ?cache ~num_domains jobs in
    let wall = Unix.gettimeofday () -. t0 in
    report, wall
  in
  (* cold vs warm: the same cache serves two consecutive batches *)
  let cache = Svc_cache.create () in
  let cold_report, cold_s = time_batch ~cache ~num_domains:1 () in
  let warm_report, warm_s = time_batch ~cache ~num_domains:1 () in
  let stats = Svc_cache.stats cache in
  Printf.printf
    "cold batch : %2d jobs in %7.1f ms (%d ok, %d failed)\n" n_jobs
    (1e3 *. cold_s)
    (List.length (Service.successes cold_report))
    (List.length (Service.failures cold_report));
  Printf.printf
    "warm batch : %2d jobs in %7.1f ms - %.1fx faster, %d cache hits\n"
    n_jobs (1e3 *. warm_s)
    (cold_s /. Float.max 1e-9 warm_s)
    stats.Svc_cache.hits;
  (* 1 vs N domains, uncached, so every job does full compiles. The
     scheduler clamps the request to the hardware parallelism; rows that
     resolve to the same effective worker count run the same configuration
     and share one measurement instead of re-timing identical work. *)
  let domain_counts = [ 1; 2; 4 ] in
  let measured : (int, float) Hashtbl.t = Hashtbl.create 4 in
  let domain_walls =
    List.map
      (fun d ->
        let workers = Scheduler.effective_workers ~num_domains:d n_jobs in
        let wall =
          match Hashtbl.find_opt measured workers with
          | Some wall -> wall
          | None ->
            let _, wall = time_batch ~num_domains:d () in
            Hashtbl.add measured workers wall;
            wall
        in
        Printf.printf
          "%d domain(s) -> %d worker(s): %2d jobs in %7.1f ms (%.1f jobs/s)\n"
          d workers n_jobs (1e3 *. wall)
          (float_of_int n_jobs /. wall);
        d, workers, wall)
      domain_counts
  in
  let jobs_per_s wall = float_of_int n_jobs /. wall in
  (* The gate is vacuous when every row resolved to one effective worker
     (a single-core host): all three rows then time the same sequential
     run, and "non-decreasing" passes no matter how the scheduler
     behaves. Say so explicitly instead of reporting a hollow pass. *)
  let multi_worker = List.exists (fun (_, w, _) -> w > 1) domain_walls in
  let scaling_ok =
    let rec non_decreasing = function
      | (_, _, w1) :: ((_, _, w2) :: _ as rest) ->
        jobs_per_s w2 >= jobs_per_s w1 && non_decreasing rest
      | _ -> true
    in
    non_decreasing domain_walls
  in
  Printf.printf "throughput non-decreasing with domains: %s\n"
    (if not multi_worker then
       "skipped (single-core host: every row ran 1 worker)"
     else if scaling_ok then "yes"
     else "NO");
  (* machine-readable summary alongside the human-readable table *)
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" n_jobs);
  Buffer.add_string buf (Printf.sprintf "  \"cold_s\": %.6f,\n" cold_s);
  Buffer.add_string buf (Printf.sprintf "  \"warm_s\": %.6f,\n" warm_s);
  Buffer.add_string buf
    (Printf.sprintf "  \"warm_speedup\": %.3f,\n"
       (cold_s /. Float.max 1e-9 warm_s));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"cache\": { \"hits\": %d, \"disk_hits\": %d, \"misses\": %d, \
        \"stores\": %d },\n"
       stats.Svc_cache.hits stats.Svc_cache.disk_hits stats.Svc_cache.misses
       stats.Svc_cache.stores);
  Buffer.add_string buf "  \"domains\": [\n";
  List.iteri
    (fun i (d, workers, wall) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"domains\": %d, \"workers\": %d, \"wall_s\": %.6f, \
            \"jobs_per_s\": %.3f }%s\n"
           d workers wall
           (float_of_int n_jobs /. wall)
           (if i = List.length domain_walls - 1 then "" else ",")))
    domain_walls;
  Buffer.add_string buf
    (Printf.sprintf "  ],\n  \"scaling_ok\": %s\n}\n"
       (if not multi_worker then "\"skipped: single-core host\""
        else string_of_bool scaling_ok));
  let oc = open_out "BENCH_service.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_service.json\n";
  ignore warm_report

(* ------------------------------------------------------------------ *)
(* Pareto autotuner - search quality and pruning gates                 *)
(* ------------------------------------------------------------------ *)

module Tune_objective = Roccc_tune.Objective
module Tune_search = Roccc_tune.Search
module Svc_trace = Roccc_service.Trace

(* trip count 16 so every unroll factor in the default grid divides it *)
let tune_fir_source =
  "void fir(int A[20], int C[16]) {\n\
  \  int i;\n\
  \  for (i = 0; i < 16; i = i + 1) {\n\
  \    C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];\n\
  \  }\n\
   }\n"

let tune_section () =
  section "Pareto autotuner - FIR unroll x bus x clock-target search";
  let obj = Tune_objective.Max_mhz { slice_budget = 4000 } in
  let settings = Tune_search.default_settings obj in
  let trace = Svc_trace.create () in
  let r = Tune_search.run ~trace settings ~source:tune_fir_source ~entry:"fir" in
  print_string (Tune_search.table r);
  let front_size = List.length r.Tune_search.res_front in
  (* gates: a real search explored a non-trivial grid, produced a
     non-degenerate front, paid for strictly fewer full compiles than
     the exhaustive grid, and visibly reused cached mid-end passes *)
  let front_ok = front_size >= 3 && r.Tune_search.res_explored >= 20 in
  let pruning_ok = r.Tune_search.res_full_evals < r.Tune_search.res_explored in
  let cached_spans =
    List.length
      (List.filter
         (fun (s : Svc_trace.span) ->
           List.mem_assoc "cached" s.Svc_trace.sp_args)
         (Svc_trace.spans trace))
  in
  let cached_ok = cached_spans > 0 in
  Printf.printf
    "front %d/%d candidates (full compiles %d, cached pass reuses %d)\n"
    front_size r.Tune_search.res_explored r.Tune_search.res_full_evals
    cached_spans;
  Printf.printf "front_ok: %s | pruning_ok: %s | cached_ok: %s\n"
    (if front_ok then "yes" else "NO")
    (if pruning_ok then "yes" else "NO")
    (if cached_ok then "yes" else "NO");
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"objective\": \"%s\",\n"
       (Tune_objective.name r.Tune_search.res_objective));
  Buffer.add_string buf
    (Printf.sprintf "  \"explored\": %d,\n" r.Tune_search.res_explored);
  Buffer.add_string buf
    (Printf.sprintf "  \"quick_evals\": %d,\n" r.Tune_search.res_quick_evals);
  Buffer.add_string buf
    (Printf.sprintf "  \"estimate_evals\": %d,\n"
       r.Tune_search.res_estimate_evals);
  Buffer.add_string buf
    (Printf.sprintf "  \"full_evals\": %d,\n" r.Tune_search.res_full_evals);
  Buffer.add_string buf (Printf.sprintf "  \"front_size\": %d,\n" front_size);
  Buffer.add_string buf
    (Printf.sprintf "  \"cached_pass_reuses\": %d,\n" cached_spans);
  Buffer.add_string buf (Printf.sprintf "  \"wall_s\": %.6f,\n" r.Tune_search.res_wall_s);
  Buffer.add_string buf (Printf.sprintf "  \"front_ok\": %b,\n" front_ok);
  Buffer.add_string buf (Printf.sprintf "  \"pruning_ok\": %b,\n" pruning_ok);
  Buffer.add_string buf (Printf.sprintf "  \"cached_ok\": %b\n}\n" cached_ok);
  let oc = open_out "BENCH_tune.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_tune.json\n"

(* ------------------------------------------------------------------ *)
(* Wide arithmetic - pinned multi-stage operator regions               *)
(* ------------------------------------------------------------------ *)

(* Three gates: the modular-square gallery kernel compiles end-to-end
   with at least one multi-stage operator and hardware = software; the
   pinned region starts survive retiming untouched (and the pipeline
   invariant checker agrees); and the single-cycle path is bit-for-bit
   what it was before the staged-operator refactor (the FIR golden
   dumps). *)
let wide_section () =
  section
    "Wide arithmetic - multi-stage operator regions (modular square over \
     2^31-1)";
  let b = Kernels.modsq in
  let c = Kernels.compile b in
  let p = c.Driver.pipeline in
  let arrays = b.Kernels.arrays () in
  let diffs = Driver.verify ~scalars:b.Kernels.scalars ~arrays c in
  let regions = Pipeline.staged_regions p in
  let region_key (i, s, k) =
    ( (match i.Roccc_vm.Instr.dst with Some d -> d | None -> -1),
      Roccc_vm.Instr.opcode_name i.Roccc_vm.Instr.op, s, k )
  in
  let modsq_compiles_ok = diffs = [] && regions <> [] in
  Printf.printf
    "modsq: %d stages, %.1f MHz, %d latch bits, %d pinned region(s), \
     hardware %s software\n"
    p.Pipeline.stage_count p.Pipeline.clock_mhz p.Pipeline.latch_bits
    (List.length regions)
    (if diffs = [] then "=" else "<>");
  List.iter
    (fun (i, s, k) ->
      Printf.printf "  pinned: %-4s stages %d..%d (%d stages)\n"
        (Roccc_vm.Instr.opcode_name i.Roccc_vm.Instr.op)
        s (s + k - 1) k)
    regions;
  (* the same staging without the retiming pass: region starts must agree,
     i.e. retiming moved nothing into or across a pinned region *)
  let greedy =
    Pipeline.build
      ~target_ns:c.Driver.options.Driver.target_ns
      ~stage_budget:c.Driver.options.Driver.stage_budget
      ~decomp:c.Driver.options.Driver.decomp ~retime:false p.Pipeline.dp
      p.Pipeline.widths
  in
  let sorted_regions q =
    List.sort compare (List.map region_key (Pipeline.staged_regions q))
  in
  let verify_ok =
    match Pipeline.verify p with
    | () -> true
    | exception Pipeline.Error msg ->
      Printf.printf "pipeline verify FAILED: %s\n" msg;
      false
  in
  let in_schedule =
    List.for_all (fun (_, s, k) -> s + k <= p.Pipeline.stage_count) regions
  in
  let pinned_stages_ok =
    sorted_regions p = sorted_regions greedy && verify_ok && in_schedule
  in
  Printf.printf
    "pinned regions: retimed = greedy %b, inside schedule %b, verify %s \
     (%d retime moves elsewhere)\n"
    (sorted_regions p = sorted_regions greedy)
    in_schedule
    (if verify_ok then "ok" else "FAILED")
    p.Pipeline.retime_moves;
  (* single-cycle path unchanged: the FIR golden dumps are byte-identical *)
  let golden_passes =
    [ "parse"; "constant-fold"; "lower-to-suifvm"; "datapath-build";
      "pipelining"; "retiming" ]
  in
  let golden_dir = "test/golden" in
  let golden_unchanged =
    if not (Sys.file_exists golden_dir) then `Skipped
    else begin
      let dumps = ref [] in
      let config =
        { (Pass.default_config ()) with
          Pass.dump_after = golden_passes;
          on_dump = (fun name text -> dumps := !dumps @ [ name, text ]) }
      in
      let fir = Kernels.fir in
      let (_ : Driver.compiled) =
        Driver.compile ~config
          ~options:(fir.Kernels.tune Driver.default_options)
          ~luts:fir.Kernels.luts ~entry:fir.Kernels.entry fir.Kernels.source
      in
      let last name =
        match List.rev (List.filter (fun (n, _) -> n = name) !dumps) with
        | (_, text) :: _ -> Some text
        | [] -> None
      in
      let ok =
        List.for_all
          (fun name ->
            let path = Printf.sprintf "%s/fir.%s.txt" golden_dir name in
            match last name with
            | Some text when Sys.file_exists path ->
              let ic = open_in_bin path in
              let n = in_channel_length ic in
              let expected = really_input_string ic n in
              close_in ic;
              let same = String.equal expected text in
              if not same then
                Printf.printf "golden dump DIVERGED: %s\n" path;
              same
            | _ ->
              Printf.printf "golden dump missing: %s\n" path;
              false)
          golden_passes
      in
      if ok then `Ok else `Failed
    end
  in
  Printf.printf "golden fir dumps: %s\n"
    (match golden_unchanged with
    | `Ok -> "byte-identical"
    | `Failed -> "DIVERGED"
    | `Skipped -> "skipped (no test/golden directory)");
  (* VDF-contest replay: the stage-budget x decomposition trade-off on
     the modular-square kernel, searched by the autotuner at tight clock
     targets. Staged wide operators (budget 0 = natural depth, or >= 2)
     must dominate the unstaged points (budget 1: the whole wide region
     in one combinational stage) on achieved clock. *)
  let vdf_source =
    if Sys.file_exists "examples/modsq.c" then begin
      let ic = open_in_bin "examples/modsq.c" in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    end
    else b.Kernels.source
  in
  let vdf_obj = Tune_objective.Max_mhz { slice_budget = 100_000 } in
  let vdf_settings =
    { (Tune_search.default_settings vdf_obj) with
      Tune_search.st_margin = 0.0;
      st_space =
        { Tune_search.sp_unroll = [ 1 ];
          sp_bus = [ 1 ];
          sp_target_ns = [ 2.0; 3.0 ];
          sp_stage_budget = [ 0; 1; 2; 4 ];
          sp_decomp = Roccc_datapath.Delay.all_decomps } }
  in
  let vr = Tune_search.run vdf_settings ~source:vdf_source ~entry:"modsq" in
  print_string (Tune_search.table vr);
  let vdf_measured =
    List.filter_map
      (fun (r : Tune_search.row) ->
        match r.Tune_search.rw_measure with
        | Some m -> Some (r.Tune_search.rw_cand, m)
        | None -> None)
      vr.Tune_search.res_rows
  in
  let best pred =
    List.fold_left
      (fun acc ((cd : Tune_search.candidate), (m : Driver.measurement)) ->
        if pred cd then Float.max acc m.Driver.ms_clock_mhz else acc)
      0.0 vdf_measured
  in
  let staged (cd : Tune_search.candidate) =
    cd.Tune_search.cd_stage_budget <> 1
  in
  let staged_best = best staged in
  let unstaged_best = best (fun c -> not (staged c)) in
  let vdf_front_ok = vr.Tune_search.res_front <> [] in
  let vdf_staged_dominates = unstaged_best > 0. && staged_best > unstaged_best in
  Printf.printf
    "vdf stage-budget study: front %d/%d, staged best %.1f MHz vs unstaged \
     %.1f MHz -> staged %s\n"
    (List.length vr.Tune_search.res_front)
    vr.Tune_search.res_explored staged_best unstaged_best
    (if vdf_staged_dominates then "dominates" else "DOES NOT dominate");
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"modsq\": { \"stages\": %d, \"clock_mhz\": %.2f, \"latch_bits\": \
        %d, \"slices\": %d, \"multi_stage_ops\": %d },\n"
       p.Pipeline.stage_count p.Pipeline.clock_mhz p.Pipeline.latch_bits
       c.Driver.area.Area.slices (List.length regions));
  Buffer.add_string buf "  \"regions\": [\n";
  List.iteri
    (fun i (instr, s, k) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"op\": \"%s\", \"start_stage\": %d, \"stages\": %d }%s\n"
           (Roccc_vm.Instr.opcode_name instr.Roccc_vm.Instr.op)
           s k
           (if i = List.length regions - 1 then "" else ",")))
    regions;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"vdf\": { \"explored\": %d, \"front_size\": %d, \
        \"staged_best_mhz\": %.2f, \"unstaged_best_mhz\": %.2f },\n"
       vr.Tune_search.res_explored
       (List.length vr.Tune_search.res_front)
       staged_best unstaged_best);
  Buffer.add_string buf
    (Printf.sprintf "  \"vdf_front_ok\": %b,\n" vdf_front_ok);
  Buffer.add_string buf
    (Printf.sprintf "  \"vdf_staged_dominates_ok\": %b,\n" vdf_staged_dominates);
  Buffer.add_string buf
    (Printf.sprintf "  \"modsq_compiles_ok\": %b,\n" modsq_compiles_ok);
  Buffer.add_string buf
    (Printf.sprintf "  \"pinned_stages_ok\": %b,\n" pinned_stages_ok);
  Buffer.add_string buf
    (Printf.sprintf "  \"golden_unchanged_ok\": %s\n}\n"
       (match golden_unchanged with
       | `Ok -> "true"
       | `Failed -> "false"
       | `Skipped -> "\"skipped: no test/golden directory\""));
  let oc = open_out "BENCH_wide.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_wide.json\n"

(* ------------------------------------------------------------------ *)
(* Process networks - two-kernel streaming pipeline with sized FIFOs   *)
(* ------------------------------------------------------------------ *)

(* Gates: the gallery network's co-simulation output is byte-identical
   to the sequential composition of the per-kernel software models
   (sized depths AND a depth-1 stress run), every channel depth meets
   the rate-analysis minimum, and at least one sized FIFO is smaller
   than the full inter-kernel buffer. *)
let net_section () =
  section "Process network - fir -> smooth through a sized FIFO channel";
  let quiet =
    { (Pass.default_config ()) with Pass.on_dump = (fun _ _ -> ()) }
  in
  let net =
    Net.plan ~config:quiet ~name:Net.gallery_pipeline Net.gallery_source
  in
  print_string (Net.describe net);
  let arrays = Net.gallery_arrays () in
  let sized_diffs = Net.verify ~arrays net in
  let stress_diffs = Net.verify ~arrays ~depths:[ 1 ] net in
  let byte_identical = sized_diffs = [] && stress_diffs = [] in
  let sim = Net.simulate ~arrays net in
  let stress = Net.simulate ~arrays ~depths:[ 1 ] net in
  let depths_ok =
    List.for_all
      (fun (ch : Net.channel) -> ch.Net.ch_depth >= ch.Net.ch_min_depth)
      net.Net.net_channels
  in
  let fifo_smaller =
    List.exists
      (fun (ch : Net.channel) -> ch.Net.ch_depth < ch.Net.ch_elements)
      net.Net.net_channels
  in
  Printf.printf
    "co-sim %d cycles (depth-1 stress %d cycles, %d full-stalls); network \
     output %s sequential composition\n"
    sim.Net.nr_cycles stress.Net.nr_cycles
    (List.fold_left
       (fun acc (cs : Net.channel_stats) -> acc + cs.Net.cs_full_stalls)
       0 stress.Net.nr_channels)
    (if byte_identical then "=" else "<>");
  List.iter
    (fun (cs : Net.channel_stats) ->
      Printf.printf
        "  channel %-16s depth %d (min %d), high water %d, %d pushed, \
         stalls full/empty %d/%d\n"
        cs.Net.cs_name cs.Net.cs_depth cs.Net.cs_min_depth
        cs.Net.cs_high_water cs.Net.cs_pushed cs.Net.cs_full_stalls
        cs.Net.cs_empty_stalls)
    sim.Net.nr_channels;
  Printf.printf
    "net_byte_identical: %s | depths_ok: %s | fifo_smaller_than_buffer: %s\n"
    (if byte_identical then "yes" else "NO")
    (if depths_ok then "yes" else "NO")
    (if fifo_smaller then "yes" else "NO");
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"pipeline\": \"%s\",\n" net.Net.net_name);
  Buffer.add_string buf
    (Printf.sprintf "  \"stages\": %d,\n" (List.length net.Net.net_stages));
  Buffer.add_string buf
    (Printf.sprintf "  \"cycles\": %d,\n" sim.Net.nr_cycles);
  Buffer.add_string buf
    (Printf.sprintf "  \"stress_cycles\": %d,\n" stress.Net.nr_cycles);
  Buffer.add_string buf "  \"channels\": [\n";
  let n_ch = List.length sim.Net.nr_channels in
  List.iteri
    (fun i (cs : Net.channel_stats) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": \"%s\", \"depth\": %d, \"min_depth\": %d, \
            \"high_water\": %d, \"pushed\": %d, \"full_stalls\": %d, \
            \"empty_stalls\": %d }%s\n"
           cs.Net.cs_name cs.Net.cs_depth cs.Net.cs_min_depth
           cs.Net.cs_high_water cs.Net.cs_pushed cs.Net.cs_full_stalls
           cs.Net.cs_empty_stalls
           (if i = n_ch - 1 then "" else ",")))
    sim.Net.nr_channels;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"net_byte_identical\": %b,\n" byte_identical);
  Buffer.add_string buf (Printf.sprintf "  \"depths_ok\": %b,\n" depths_ok);
  Buffer.add_string buf
    (Printf.sprintf "  \"fifo_smaller_than_buffer\": %b\n}\n" fifo_smaller);
  let oc = open_out "BENCH_net.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_net.json\n"

(* ------------------------------------------------------------------ *)
(* Serve soak - mixed load through the Unix socket at 1/2/4 workers    *)
(* ------------------------------------------------------------------ *)

module Server = Roccc_service.Server
module Svc_json = Roccc_service.Json
module Svc_faults = Roccc_service.Faults
module Svc_metrics = Roccc_service.Metrics

let soak_kernel c =
  Printf.sprintf
    "void k(int A[16], int B[16]) { int i; for (i = 0; i < 16; i = i + 1) { \
     B[i] = A[i] * %d + %d; } }"
    c (c + 1)

(* The mixed load: compile requests cycling over 26 distinct
   (source x options) keys — so each run pays a batch of cold compiles up
   front and mostly-warm cache traffic after — with a health probe every
   40th line. Two of the keys are the stage kernels of the two-kernel
   gallery network (examples/stream.c), so the soak also covers sources
   carrying a [pipeline] declaration through the protocol. Generated
   once and replayed identically at every worker count, so responses are
   comparable across runs. *)
let soak_lines n =
  List.init n (fun i ->
      if i mod 40 = 39 then Printf.sprintf {|{"id":"h%04d","type":"health"}|} i
      else
        let key = i mod 26 in
        if key >= 24 then
          let entry = if key = 24 then "fir" else "smooth" in
          Printf.sprintf {|{"id":"r%04d","source":%S,"entry":%S}|} i
            Net.gallery_source entry
        else
          let source = soak_kernel (key mod 6) in
          let bus = if key / 6 mod 2 = 0 then 1 else 2 in
          let unroll = if key / 12 = 0 then 0 else 2 in
          Printf.sprintf
            {|{"id":"r%04d","source":%S,"entry":"k","options":{"bus_elements":%d,"unroll_inner_max":%d}}|}
            i source bus unroll)

(* Push one request stream through a real Unix socket: a spawned domain
   accepts and serves, a writer domain feeds the lines, and the calling
   domain drains responses. The queue is sized to the stream so nothing
   is shed (shedding is timing-dependent and would break the
   byte-identical comparison). *)
let soak_run ?trace ~workers (lines : string list) =
  let cache = Svc_cache.create () in
  let limits =
    { Server.default_limits with
      Server.workers;
      queue_depth = List.length lines + 1 }
  in
  let srv = Server.create ~cache ?trace ~limits () in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "roccc-soak-%d-%d.sock" (Unix.getpid ()) workers)
  in
  if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 1;
  let server_domain =
    Domain.spawn (fun () ->
        let fd, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let snap = Server.serve srv ic oc in
        (try flush oc with Sys_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        snap)
  in
  let client = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect client (Unix.ADDR_UNIX path);
  let t0 = Unix.gettimeofday () in
  let writer =
    Domain.spawn (fun () ->
        let wc = Unix.out_channel_of_descr client in
        List.iter
          (fun l ->
            output_string wc l;
            output_char wc '\n')
          lines;
        flush wc;
        (* half-close: the server sees EOF and drains; responses still
           flow back on the other direction *)
        try Unix.shutdown client Unix.SHUTDOWN_SEND
        with Unix.Unix_error _ -> ())
  in
  let rc = Unix.in_channel_of_descr client in
  let rec read_all acc =
    match input_line rc with
    | line -> read_all (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let responses = read_all [] in
  let wall = Unix.gettimeofday () -. t0 in
  Domain.join writer;
  let snap = Domain.join server_domain in
  (try Unix.close client with Unix.Unix_error _ -> ());
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (try Sys.remove path with Sys_error _ -> ());
  responses, wall, snap

(* Push the same request stream through [conns] SIMULTANEOUS socket
   connections into one {!Server.serve_socket} accept loop: the lines
   are dealt round-robin across the connections, each connection
   streams its share from a writer domain while a reader domain drains
   its responses. Duplicated keys land on different connections at the
   same time, which is exactly the load single-flight deduplication
   exists for; the returned cache stats expose [flights] (executions)
   and [coalesced]. *)
let soak_run_concurrent ?(workers = 4) ~conns (lines : string list) =
  let cache = Svc_cache.create () in
  let limits =
    { Server.default_limits with
      Server.workers;
      queue_depth = List.length lines + 1 }
  in
  let srv = Server.create ~cache ~limits () in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "roccc-csoak-%d-%d.sock" (Unix.getpid ()) conns)
  in
  if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock (max 8 conns);
  let server_domain =
    Domain.spawn (fun () -> Server.serve_socket ~poll_interval_s:0.01 srv sock)
  in
  let shares = Array.make conns [] in
  List.iteri (fun i l -> shares.(i mod conns) <- l :: shares.(i mod conns))
    lines;
  let shares = Array.map List.rev shares in
  let t0 = Unix.gettimeofday () in
  let clients =
    Array.map
      (fun share ->
        Domain.spawn (fun () ->
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX path);
            let writer =
              Domain.spawn (fun () ->
                  let wc = Unix.out_channel_of_descr fd in
                  List.iter
                    (fun l ->
                      output_string wc l;
                      output_char wc '\n')
                    share;
                  flush wc;
                  try Unix.shutdown fd Unix.SHUTDOWN_SEND
                  with Unix.Unix_error _ -> ())
            in
            let rc = Unix.in_channel_of_descr fd in
            let rec read_all acc =
              match input_line rc with
              | line -> read_all (line :: acc)
              | exception End_of_file -> List.rev acc
            in
            let responses = read_all [] in
            Domain.join writer;
            (try Unix.close fd with Unix.Unix_error _ -> ());
            responses))
      shares
  in
  let responses = List.concat_map Domain.join (Array.to_list clients) in
  let wall = Unix.gettimeofday () -. t0 in
  Server.request_stop srv;
  let snap = Domain.join server_domain in
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (try Sys.remove path with Sys_error _ -> ());
  responses, wall, snap, Svc_cache.stats cache

(* Compile responses only (ids r....), sorted by id, with the two fields
   that legitimately vary across runs stripped: elapsed_ms (timing) and
   origin (whether a repeated key raced its first compile is
   scheduling-dependent; the payload bytes are not). *)
let soak_canonical (responses : string list) : string list =
  List.filter_map
    (fun line ->
      match Svc_json.parse line with
      | Error msg -> failwith ("unparseable soak response: " ^ msg)
      | Ok j -> (
        match Svc_json.member "id" j with
        | Some (Svc_json.Str id)
          when String.length id > 0 && id.[0] = 'r' -> (
          match j with
          | Svc_json.Obj fields ->
            Some
              ( id,
                Svc_json.to_string
                  (Svc_json.Obj
                     (List.filter
                        (fun (k, _) -> k <> "elapsed_ms" && k <> "origin")
                        fields)) )
          | _ -> Some (id, line))
        | _ -> None))
    responses
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map snd

let structured_status line =
  match Svc_json.parse line with
  | Error _ -> false
  | Ok j -> (
    match
      Option.bind (Svc_json.member "status" j) Svc_json.to_string_opt
    with
    | Some ("ok" | "error" | "overloaded" | "deadline_exceeded") -> true
    | _ -> false)

let serve_soak_section () =
  section "Serve soak - mixed load through the Unix socket at 1/2/4 workers";
  let n = 1200 in
  let lines = soak_lines n in
  let worker_counts = [ 1; 2; 4 ] in
  let trace = Svc_trace.create () in
  let runs =
    List.map
      (fun w ->
        (* trace only the widest run: its per-shard counter tracks show
           the striped cache under the most concurrency *)
        let trace = if w = 4 then Some trace else None in
        let responses, wall, snap = soak_run ?trace ~workers:w lines in
        let rps = float_of_int (List.length responses) /. wall in
        Printf.printf
          "%d worker(s): %4d responses in %7.1f ms (%7.1f req/s, p50 %.2f \
           ms, p95 %.2f ms)\n%!"
          w (List.length responses) (1e3 *. wall) rps
          snap.Svc_metrics.s_p50_ms snap.Svc_metrics.s_p95_ms;
        w, responses, wall, snap)
      worker_counts
  in
  (* gate 1: every run answered every line, and the compile responses are
     byte-identical across worker counts (after stripping timing/origin) *)
  let all_answered =
    List.for_all (fun (_, rs, _, _) -> List.length rs = n) runs
  in
  let canonicals = List.map (fun (_, rs, _, _) -> soak_canonical rs) runs in
  let byte_identical =
    all_answered
    && (match canonicals with
       | first :: rest -> List.for_all (fun c -> c = first) rest
       | [] -> false)
  in
  (* gate 2: throughput must not collapse as workers grow. On a
     single-core host extra domains cannot run in parallel (serve
     deliberately does not clamp --jobs, for IO-bound streams), so the
     gate is skipped there — explicitly, not vacuously. *)
  let multi_core = Scheduler.default_domains () > 1 in
  let tolerance = 0.9 in
  let rps_of (_, rs, wall, _) = float_of_int (List.length rs) /. wall in
  let throughput_ok =
    let rec non_decreasing = function
      | a :: (b :: _ as rest) ->
        rps_of b >= tolerance *. rps_of a && non_decreasing rest
      | _ -> true
    in
    non_decreasing runs
  in
  Printf.printf "responses byte-identical across worker counts: %s\n"
    (if byte_identical then "yes" else "NO");
  Printf.printf "throughput non-decreasing with workers: %s\n"
    (if not multi_core then "skipped (single-core host)"
     else if throughput_ok then "yes"
     else "NO");
  (* gate 3: a faulted burst stays structured — every line is answered
     with a known status, nothing crashes or hangs *)
  let fault_n = 160 in
  let fault_lines = soak_lines fault_n in
  let faults_structured =
    match Svc_faults.parse "scheduler_claim:0.2,driver_pass:0.05,cache_read:0.25"
    with
    | Error msg -> failwith ("bad fault spec: " ^ msg)
    | Ok plan ->
      Svc_faults.install plan;
      Fun.protect ~finally:Svc_faults.clear (fun () ->
          let responses, _, _ = soak_run ~workers:2 fault_lines in
          List.length responses = fault_n
          && List.for_all structured_status responses)
  in
  Printf.printf "faulted burst structured: %s\n"
    (if faults_structured then "yes" else "NO");
  (* gates 4-6: the same stream through 1 vs 4 SIMULTANEOUS connections
     into one serve_socket accept loop. Responses must stay correctly
     routed and byte-identical to the sequential runs, concurrent
     duplicate keys must coalesce onto single-flight leaders
     (executions <= distinct keys), and fanning the stream out across
     connections must not cost throughput. *)
  let conn_counts = [ 1; 4 ] in
  let conc_runs =
    List.map
      (fun conns ->
        let responses, wall, snap, cstats =
          soak_run_concurrent ~workers:4 ~conns lines
        in
        Printf.printf
          "%d connection(s): %4d responses in %7.1f ms (%7.1f req/s, %d \
           executions, %d coalesced)\n%!"
          conns (List.length responses) (1e3 *. wall)
          (float_of_int (List.length responses) /. wall)
          cstats.Svc_cache.flights cstats.Svc_cache.coalesced;
        conns, responses, wall, snap, cstats)
      conn_counts
  in
  let conc_all_answered =
    List.for_all (fun (_, rs, _, _, _) -> List.length rs = n) conc_runs
  in
  let concurrent_byte_identical =
    (* vs the sequential-connection runs above AND across each other *)
    conc_all_answered
    && (match canonicals with
       | first :: _ ->
         List.for_all
           (fun (_, rs, _, _, _) -> soak_canonical rs = first)
           conc_runs
       | [] -> false)
  in
  let distinct_keys = 26 in
  let coalesce_ok =
    List.for_all
      (fun (_, _, _, _, (st : Svc_cache.stats)) ->
        st.Svc_cache.flights >= 1 && st.Svc_cache.flights <= distinct_keys)
      conc_runs
  in
  let conc_rps_of (_, rs, wall, _, _) =
    float_of_int (List.length rs) /. wall
  in
  let concurrent_throughput_ok =
    let rec non_decreasing = function
      | a :: (b :: _ as rest) ->
        conc_rps_of b >= tolerance *. conc_rps_of a && non_decreasing rest
      | _ -> true
    in
    non_decreasing conc_runs
  in
  Printf.printf "concurrent responses byte-identical to sequential: %s\n"
    (if concurrent_byte_identical then "yes" else "NO");
  Printf.printf "duplicate keys coalesce (executions <= %d): %s\n"
    distinct_keys
    (if coalesce_ok then "yes" else "NO");
  Printf.printf "throughput non-decreasing 1 -> 4 connections: %s\n"
    (if not multi_core then "skipped (single-core host)"
     else if concurrent_throughput_ok then "yes"
     else "NO");
  let oc = open_out "serve_soak_trace.json" in
  output_string oc (Svc_trace.to_chrome_json trace);
  close_out oc;
  Printf.printf "wrote serve_soak_trace.json\n";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"requests_per_run\": %d,\n" n);
  Buffer.add_string buf "  \"distinct_compile_keys\": 24,\n";
  Buffer.add_string buf "  \"runs\": [\n";
  List.iteri
    (fun i (w, rs, wall, (snap : Svc_metrics.snapshot)) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"workers\": %d, \"responses\": %d, \"wall_s\": %.6f, \
            \"throughput_rps\": %.3f, \"p50_ms\": %.4f, \"p95_ms\": %.4f, \
            \"ok\": %d, \"health\": %d }%s\n"
           w (List.length rs) wall
           (float_of_int (List.length rs) /. wall)
           snap.Svc_metrics.s_p50_ms snap.Svc_metrics.s_p95_ms
           snap.Svc_metrics.s_ok snap.Svc_metrics.s_health
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"byte_identical\": %b,\n" byte_identical);
  Buffer.add_string buf
    (Printf.sprintf "  \"throughput_tolerance\": %.2f,\n" tolerance);
  Buffer.add_string buf
    (Printf.sprintf "  \"throughput_ok\": %s,\n"
       (if not multi_core then "\"skipped: single-core host\""
        else string_of_bool throughput_ok));
  Buffer.add_string buf
    (Printf.sprintf "  \"faulted_requests\": %d,\n" fault_n);
  Buffer.add_string buf
    (Printf.sprintf "  \"faults_structured\": %b,\n" faults_structured);
  Buffer.add_string buf "  \"concurrent_runs\": [\n";
  List.iteri
    (fun i (conns, rs, wall, (snap : Svc_metrics.snapshot),
            (cstats : Svc_cache.stats)) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"connections\": %d, \"responses\": %d, \"wall_s\": %.6f, \
            \"throughput_rps\": %.3f, \"ok\": %d, \"executions\": %d, \
            \"coalesced\": %d, \"conns_accepted\": %d }%s\n"
           conns (List.length rs) wall
           (float_of_int (List.length rs) /. wall)
           snap.Svc_metrics.s_ok cstats.Svc_cache.flights
           cstats.Svc_cache.coalesced snap.Svc_metrics.s_conns
           (if i = List.length conc_runs - 1 then "" else ",")))
    conc_runs;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"concurrent_byte_identical\": %b,\n"
       concurrent_byte_identical);
  Buffer.add_string buf
    (Printf.sprintf "  \"coalesce_ok\": %b,\n" coalesce_ok);
  Buffer.add_string buf
    (Printf.sprintf "  \"concurrent_throughput_ok\": %s\n}\n"
       (if not multi_core then "\"skipped: single-core host\""
        else string_of_bool concurrent_throughput_ok));
  let oc = open_out "BENCH_serve_soak.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_serve_soak.json\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let bechamel_section () =
  section "Bechamel micro-benchmarks";
  let open Bechamel in
  let compile_test name b =
    Test.make ~name (Staged.stage (fun () -> ignore (Kernels.compile b)))
  in
  let fir_c = Kernels.compile Kernels.fir in
  let estimate_test =
    Test.make ~name:"area-estimation:fir"
      (Staged.stage (fun () -> ignore (Area.quick_estimate fir_c.Driver.dp)))
  in
  let simulate_test =
    let arrays = Kernels.fir.Kernels.arrays () in
    Test.make ~name:"simulate:fir"
      (Staged.stage (fun () -> ignore (Driver.simulate ~arrays fir_c)))
  in
  let tests =
    [ compile_test "compile:fir" Kernels.fir;
      compile_test "compile:dct" Kernels.dct;
      compile_test "compile:udiv" Kernels.udiv;
      estimate_test;
      simulate_test ]
  in
  List.iter
    (fun t ->
      let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
      let instances = Toolkit.Instance.[ monotonic_clock ] in
      let results = Benchmark.all cfg instances t in
      let a =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-24s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-24s (no estimate)\n" name)
        a)
    tests

(* ------------------------------------------------------------------ *)

(* `bench --only dataflow,service` (or --only=...) runs just those
   sections — the CI smoke step uses it to regenerate the two machine-
   readable JSONs without replaying the full paper reproduction. *)
let sections : (string * (unit -> unit)) list =
  [ "table1", (fun () -> print_table1 (table1_rows ()));
    ( "figures",
      fun () ->
        figure1 ();
        figure1_profiling ();
        figure2 ();
        figure3 ();
        figure4 ();
        figure56 ();
        figure7 () );
    ( "claims",
      fun () ->
        throughput_section ();
        smart_buffer_section ();
        area_estimation_section ();
        power_section () );
    ( "ablations",
      fun () ->
        ablation_stage_budget ();
        ablation_bit_widths ();
        ablation_mul_acc_rewrite ();
        ablation_dct_unroll ();
        ablation_partial_unroll ();
        ablation_backend_optimize ();
        ablation_loop_fusion ();
        ablation_smart_buffer () );
    "dataflow", dataflow_section;
    "pipeline", pipeline_section;
    "service", service_section;
    "tune", tune_section;
    "wide", wide_section;
    "net", net_section;
    "serve-soak", serve_soak_section;
    "bechamel", bechamel_section ]

let selected_sections () : string list option =
  let argv = Sys.argv in
  let found = ref None in
  Array.iteri
    (fun i a ->
      let prefix = "--only=" in
      if a = "--only" && i + 1 < Array.length argv then
        found := Some argv.(i + 1)
      else if String.starts_with ~prefix a then
        found :=
          Some (String.sub a (String.length prefix)
                  (String.length a - String.length prefix)))
    argv;
  match !found with
  | None -> None
  | Some spec ->
    let names =
      String.split_on_char ',' spec
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    List.iter
      (fun n ->
        if not (List.mem_assoc n sections) then begin
          Printf.eprintf "unknown bench section %S; available: %s\n" n
            (String.concat ", " (List.map fst sections));
          exit 2
        end)
      names;
    Some names

let () =
  print_endline "ROCCC data-path generation - reproduction benchmark harness";
  print_endline "(paper numbers quoted from DATE 2005, Table 1)";
  let only = selected_sections () in
  let want name =
    match only with None -> true | Some names -> List.mem name names
  in
  List.iter (fun (name, run) -> if want name then run ()) sections;
  print_endline "\ndone."
