#!/usr/bin/env bash
# CI smoke test for `roccc farm`: bring up a 2-process farm on one Unix
# socket, drive concurrent duplicate compiles from two connections
# (byte-identical answers expected), hard-kill a child and assert the
# supervisor restarts it, then shut the farm down through the protocol
# and assert a clean exit with aggregated cross-child health.
set -euo pipefail

ROCCC=${ROCCC:-_build/default/bin/roccc.exe}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

fail() {
  echo "farm_smoke: FAIL: $1" >&2
  cat "$WORK/farm.log" >&2 || true
  kill -9 "$SUP" 2> /dev/null || true
  exit 1
}

"$ROCCC" farm --socket "$WORK/farm.sock" --procs 2 \
  --state-dir "$WORK/state" --cache --cache-dir "$WORK/cache" --jobs 2 \
  > "$WORK/farm.out" 2> "$WORK/farm.log" &
SUP=$!

for _ in $(seq 1 100); do [ -S "$WORK/farm.sock" ] && break; sleep 0.1; done
[ -S "$WORK/farm.sock" ] || fail "farm socket never appeared"

# concurrent duplicate compiles across two simultaneous connections:
# every request answered ok, and the responses are byte-identical
# request-for-request across the connections (elapsed_ms/origin aside)
python3 - "$WORK/farm.sock" <<'EOF' || fail "concurrent duplicate compiles"
import json, socket, sys, threading

path = sys.argv[1]
KERNEL = "void k(int A[8], int B[8]) { int i; for (i = 0; i < 8; i = i + 1) { B[i] = A[i] * %d + 1; } }"

def client(tag, out):
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.connect(path)
    f = s.makefile("rw")
    for i in range(6):
        req = {"id": "%s%d" % (tag, i), "source": KERNEL % (i % 3), "entry": "k"}
        f.write(json.dumps(req) + "\n"); f.flush()
        out.append(json.loads(f.readline()))
    s.close()

a, b = [], []
ta = threading.Thread(target=client, args=("a", a))
tb = threading.Thread(target=client, args=("b", b))
ta.start(); tb.start(); ta.join(); tb.join()

def canon(resps):
    return [{k: v for k, v in r.items() if k not in ("id", "elapsed_ms", "origin")} for r in resps]

assert all(r["status"] == "ok" for r in a + b), "non-ok response"
assert canon(a) == canon(b), "responses differ across connections"
print("concurrent duplicate compiles byte-identical")
EOF

child_pid() {
  python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["children"][0]["pid"])' \
    "$WORK/state/farm.json"
}

# hard-kill child 0: the supervisor must fork a replacement
CHILD=$(child_pid)
kill -9 "$CHILD"
NEW=$CHILD
for _ in $(seq 1 100); do
  NEW=$(child_pid)
  [ "$NEW" != "$CHILD" ] && [ "$NEW" != 0 ] && break
  sleep 0.1
done
[ "$NEW" != "$CHILD" ] || fail "child was not restarted"
grep -q 'restarted child' "$WORK/farm.log" || fail "restart not logged"

# the restarted farm still serves; then shut it down through the protocol
python3 - "$WORK/farm.sock" <<'EOF' || fail "post-restart compile/shutdown"
import json, socket, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
f = s.makefile("rw")
f.write(json.dumps({"id": "after", "source": "int f(int x) { return x + 7; }", "entry": "f"}) + "\n"); f.flush()
assert json.loads(f.readline())["status"] == "ok", "compile after restart failed"
f.write(json.dumps({"id": "s", "type": "shutdown"}) + "\n"); f.flush()
assert json.loads(f.readline())["status"] == "ok", "shutdown not acknowledged"
s.close()
EOF

# a clean child exit brings the whole farm down, exit 0
rc=0
wait "$SUP" || rc=$?
[ "$rc" -eq 0 ] || fail "supervisor exited $rc, want 0"
grep -q 'roccc farm: shut down (clean, 1 restarts, 3 spawns)' "$WORK/farm.log" \
  || fail "shutdown summary wrong"

# the aggregate on stdout folds both children's health snapshots
grep -q '"children_reporting":2' "$WORK/farm.out" \
  || fail "aggregate health missing children"
grep -q '"aggregate":{' "$WORK/farm.out" || fail "no aggregate object"
grep -q '"child-0.json"' "$WORK/farm.out" || fail "child 0 snapshot missing"
grep -q '"child-1.json"' "$WORK/farm.out" || fail "child 1 snapshot missing"

echo "farm_smoke: OK"
