(* Regenerate the test/golden IR dump files:
     dune exec tools/gen_golden.exe -- test/golden
   Run from the repository root after an intentional IR or printer change,
   then review the diff. *)

module Pass = Roccc_core.Pass
module Driver = Roccc_core.Driver
module Kernels = Roccc_core.Kernels

let dump_passes =
  [ "parse"; "constant-fold"; "lower-to-suifvm"; "datapath-build";
    "pipelining"; "retiming" ]

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden" in
  let b = Kernels.fir in
  let dumps = ref [] in
  let config =
    { (Pass.default_config ()) with
      Pass.dump_after = dump_passes;
      on_dump = (fun name text -> dumps := !dumps @ [ name, text ]) }
  in
  let (_ : Driver.compiled) =
    Driver.compile ~config
      ~options:(b.Kernels.tune Driver.default_options)
      ~luts:b.Kernels.luts ~entry:b.Kernels.entry b.Kernels.source
  in
  List.iter
    (fun name ->
      match List.rev (List.filter (fun (n, _) -> n = name) !dumps) with
      | (_, text) :: _ ->
        let path = Filename.concat dir (Printf.sprintf "fir.%s.txt" name) in
        let oc = open_out_bin path in
        output_string oc text;
        close_out oc;
        Printf.printf "wrote %s (%d bytes)\n" path (String.length text)
      | [] -> failwith ("no dump for " ^ name))
    dump_passes;
  (* the process-network plan for the two-kernel gallery pipeline *)
  let module Net = Roccc_net.Net in
  let quiet =
    { (Pass.default_config ()) with Pass.on_dump = (fun _ _ -> ()) }
  in
  let net =
    Net.plan ~config:quiet ~name:Net.gallery_pipeline Net.gallery_source
  in
  let text = Net.describe net in
  let path = Filename.concat dir "stream.net.txt" in
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n" path (String.length text)
