#!/usr/bin/env bash
# CI smoke test for `roccc serve`: drive a scripted session — a compile,
# a cache-warm repeat, a health probe, a malformed line, a deadline miss
# and a request that hits an injected fault — and assert every line got a
# structured response and the server drained cleanly.
set -euo pipefail

ROCCC=${ROCCC:-_build/default/bin/roccc.exe}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

KERNEL='void k(int A[8], int B[8]) { int i; for (i = 0; i < 8; i = i + 1) { B[i] = A[i] * 3 + 1; } }'

cat > "$WORK/session.jsonl" <<EOF
{"id":"c1","source":"$KERNEL","entry":"k"}
{"id":"c2","source":"$KERNEL","entry":"k"}
{"id":"bad","source":"void k(int A[4]) { A[0] = }","entry":"k"}
{this is not json
{"id":"dl","source":"$KERNEL","entry":"k","deadline_ms":0.0001}
{"id":"h","type":"health","drain":true}
EOF

# scheduler_claim at rate 1.0 fires on every worker claim: every compile
# comes back as a structured injected_fault error, never a crash.
"$ROCCC" serve --jobs 2 --cache --cache-dir "$WORK/cache" \
  --inject-fault scheduler_claim \
  < "$WORK/session.jsonl" > "$WORK/faulted.jsonl" 2> "$WORK/faulted.log"

# and the same session healthy end-to-end
"$ROCCC" serve --jobs 2 --cache --cache-dir "$WORK/cache" \
  < "$WORK/session.jsonl" > "$WORK/clean.jsonl" 2> "$WORK/clean.log"

fail() { echo "serve_smoke: FAIL: $1" >&2; cat "$WORK"/*.jsonl >&2; exit 1; }

for out in faulted clean; do
  n=$(wc -l < "$WORK/$out.jsonl")
  [ "$n" -eq 6 ] || fail "$out: expected 6 responses, got $n"
  grep -q '"kind":"bad_request".*malformed JSON' "$WORK/$out.jsonl" \
    || fail "$out: malformed line not answered"
  grep -q '"id":"h","status":"ok","health"' "$WORK/$out.jsonl" \
    || fail "$out: no health snapshot"
  grep -q 'drained after' "$WORK/$out.log" || fail "$out: no clean drain"
done

# rate-1.0 claim faults hit every worker-handled request — all four come
# back as structured injected_fault errors, and the health snapshot
# records the firings
for id in c1 c2 bad dl; do
  grep -q "\"id\":\"$id\",\"status\":\"error\",\"kind\":\"injected_fault\"" \
    "$WORK/faulted.jsonl" || fail "$id: injected fault not structured"
done
grep -q '"scheduler_claim":{"calls":4,"fired":4}' "$WORK/faulted.jsonl" \
  || fail "health snapshot missing fault counts"
grep -q '"id":"bad".*"kind":"compile"' "$WORK/clean.jsonl" \
  || fail "no structured compile error"
grep -q '"id":"dl","status":"deadline_exceeded"' "$WORK/clean.jsonl" \
  || fail "deadline miss not structured"
grep -q '"id":"c1","status":"ok"' "$WORK/clean.jsonl" || fail "c1 did not compile"
grep -q '"id":"c2","status":"ok"' "$WORK/clean.jsonl" || fail "c2 did not compile"
# c2 is byte-identical to c1, so the healthy run must see a cache hit
grep -q '"id":"c2","status":"ok".*"origin":"warm' "$WORK/clean.jsonl" \
  || fail "repeat compile missed the cache"

# invalid resource flags are friendly usage errors (exit 2)
set +e
"$ROCCC" serve --jobs=-1 < /dev/null 2> "$WORK/usage.log"; rc=$?
set -e
[ "$rc" -eq 2 ] || fail "--jobs=-1 exited $rc, want 2"
grep -q 'positive integer' "$WORK/usage.log" || fail "--jobs=-1 message unhelpful"

# --jobs 0 means auto: the session runs, and health reports both the
# configured count (0) and the effective one the pool resolved it to
printf '{"id":"h","type":"health"}\n' \
  | "$ROCCC" serve --jobs 0 > "$WORK/auto.jsonl" 2> "$WORK/auto.log"
grep -q '"workers":{"configured":0,"effective":[1-9]' "$WORK/auto.jsonl" \
  || fail "--jobs 0 did not resolve to an effective worker count"

echo "serve_smoke: OK"
