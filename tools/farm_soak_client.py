#!/usr/bin/env python3
"""Concurrent-client soak driver for `roccc serve --socket` / `roccc farm`.

Usage: farm_soak_client.py SOCKET_PATH CONNECTIONS REQUESTS_PER_CONNECTION

Opens N simultaneous connections, streams duplicated compile keys down
all of them at once (the load single-flight deduplication exists for),
and asserts: every request is answered ok on the connection that sent
it, in its order, and the payloads are byte-identical connection-for-
connection once the legitimately varying fields (elapsed_ms, origin) are
stripped. Finishes by shutting the server down through the protocol.
Prints "farm_soak: OK" on success; any failure raises (non-zero exit).
"""
import json
import socket
import sys
import threading

KERNEL = (
    "void k(int A[16], int B[16]) { int i; "
    "for (i = 0; i < 16; i = i + 1) { B[i] = A[i] * %d + %d; } }"
)
DISTINCT_KEYS = 6


def request(tag, i):
    key = i % DISTINCT_KEYS
    return {
        "id": "%s%04d" % (tag, i),
        "source": KERNEL % (key, key + 1),
        "entry": "k",
        "options": {"bus_elements": 1 + key % 2},
    }


def client(path, tag, n, out, errors):
    try:
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.connect(path)
        f = s.makefile("rw")
        for i in range(n):
            f.write(json.dumps(request(tag, i)) + "\n")
            f.flush()
            resp = json.loads(f.readline())
            if resp.get("id") != "%s%04d" % (tag, i):
                raise AssertionError(
                    "%s: response %d misrouted: %r" % (tag, i, resp)
                )
            if resp.get("status") != "ok":
                raise AssertionError("%s: request %d not ok: %r" % (tag, i, resp))
            out.append(resp)
        s.close()
    except Exception as e:  # propagate to the main thread
        errors.append(e)


def canon(resps):
    return [
        {k: v for k, v in r.items() if k not in ("id", "elapsed_ms", "origin")}
        for r in resps
    ]


def main():
    path, conns, per_conn = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
    outs = [[] for _ in range(conns)]
    errors = []
    threads = [
        threading.Thread(
            target=client, args=(path, chr(ord("a") + c), per_conn, outs[c], errors)
        )
        for c in range(conns)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    first = canon(outs[0])
    for c in range(1, conns):
        if canon(outs[c]) != first:
            raise AssertionError("connection %d answers differ from connection 0" % c)
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.connect(path)
    f = s.makefile("rw")
    f.write(json.dumps({"id": "s", "type": "shutdown"}) + "\n")
    f.flush()
    if json.loads(f.readline()).get("status") != "ok":
        raise AssertionError("shutdown not acknowledged")
    s.close()
    print(
        "farm_soak: OK (%d connections x %d requests, byte-identical)"
        % (conns, per_conn)
    )


if __name__ == "__main__":
    main()
