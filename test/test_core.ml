(* Aggregated test runner; suites are registered by per-library test modules. *)
let () =
  Alcotest.run "roccc"
    (Test_cfront.suites @ Test_hir.suites @ Test_vm.suites @ Test_datapath.suites @ Test_vhdl.suites @ Test_hw.suites @ Test_core_driver.suites @ Test_backend_opt.suites @ Test_analysis_extra.suites @ Test_testbench.suites @ Test_robustness.suites @ Test_models.suites @ Test_profile.suites @ Test_vcd.suites @ Test_coverage.suites @ Test_kernel_gallery.suites @ Test_fuzz2.suites @ Test_util.suites @ Test_dataflow.suites @ Test_passes.suites @ Test_service.suites @ Test_tune.suites @ Test_wide.suites @ Test_net.suites)
