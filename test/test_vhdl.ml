(* Tests for VHDL generation: rendering, structural lint of generated
   designs, ROM emission. *)

open Roccc_cfront
open Roccc_hir
open Roccc_vm
open Roccc_analysis
open Roccc_datapath
module V = Roccc_vhdl.Ast
module Gen = Roccc_vhdl.Gen
module Lint = Roccc_vhdl.Lint

let fir_source = Roccc_core.Kernels.paper_fir_source

let if_else_source = Roccc_core.Kernels.paper_if_else_source

let acc_source = Roccc_core.Kernels.paper_acc_source

let design_of ?(luts_sig = []) ?(luts = []) src name =
  let prog = Parser.parse_program src in
  let _ = Semant.check_program ~luts:luts_sig prog in
  let f = List.find (fun g -> g.Ast.fname = name) prog.Ast.funcs in
  let k = Feedback.annotate (Scalar_replacement.run prog f) in
  let proc = Lower.lower_kernel ~luts:luts_sig k in
  let _ = Ssa.convert proc in
  let dp = Builder.build proc in
  let w = Widths.infer dp in
  let p = Pipeline.build dp w in
  Gen.generate ~luts p

let contains needle hay =
  let re = Str.regexp_string needle in
  try
    ignore (Str.search_forward re hay 0);
    true
  with Not_found -> false

(* ------------------------------------------------------------------ *)
(* Rendering basics                                                    *)
(* ------------------------------------------------------------------ *)

let test_render_entity () =
  let d = design_of fir_source "fir" in
  let text = V.to_string d in
  Alcotest.(check bool) "has library clause" true
    (contains "use ieee.numeric_std.all;" text);
  Alcotest.(check bool) "top entity present" true
    (contains "entity fir_dp is" text);
  Alcotest.(check bool) "window port A0" true (contains "A0 : in" text);
  Alcotest.(check bool) "output port Tmp0" true (contains "Tmp0 : out" text);
  Alcotest.(check bool) "clock port" true (contains "clk : in std_logic" text)

let test_one_component_per_node () =
  (* "ROCCC generates one VHDL component for each CFG node that goes to
     hardware" — every data-path node yields an entity. *)
  let prog = Parser.parse_program if_else_source in
  let _ = Semant.check_program prog in
  let f = List.hd prog.Ast.funcs in
  let k = Feedback.annotate (Scalar_replacement.run prog f) in
  let proc = Lower.lower_kernel k in
  let _ = Ssa.convert proc in
  let dp = Builder.build proc in
  let w = Widths.infer dp in
  let p = Pipeline.build dp w in
  let d = Gen.generate p in
  (* nodes + top *)
  Alcotest.(check int) "units = nodes + top"
    (List.length dp.Graph.nodes + 1)
    (List.length d.V.units)

let test_feedback_register_emitted () =
  let d = design_of acc_source "acc" in
  let text = V.to_string d in
  Alcotest.(check bool) "feedback signal" true (contains "fb_sum" text);
  Alcotest.(check bool) "feedback next" true (contains "fb_sum_next" text);
  Alcotest.(check bool) "reset initializes feedback" true
    (contains "if rst = '1' then" text)

(* ------------------------------------------------------------------ *)
(* Lint                                                                *)
(* ------------------------------------------------------------------ *)

let test_lint_fir () =
  let d = design_of fir_source "fir" in
  let r = Lint.check d in
  Alcotest.(check bool) "units checked" true (r.Lint.units_checked >= 2);
  Alcotest.(check bool) "instances checked" true (r.Lint.instances_checked >= 1)

let test_lint_if_else () =
  let d = design_of if_else_source "if_else" in
  ignore (Lint.check d)

let test_lint_accumulator () =
  let d = design_of acc_source "acc" in
  ignore (Lint.check d)

let test_lint_nested () =
  let src =
    "void nested(int x, int y, int* o) {\n\
    \  int r;\n\
    \  r = 0;\n\
    \  if (x > 0) {\n\
    \    if (y > 0) { r = x + y; } else { r = x - y; }\n\
    \  } else {\n\
    \    r = y;\n\
    \  }\n\
    \  *o = r;\n\
     }"
  in
  ignore (Lint.check (design_of src "nested"))

let test_lint_catches_undeclared () =
  let bad =
    { V.design_name = "bad";
      units =
        [ { V.unit_entity =
              { V.entity_name = "bad";
                entity_ports =
                  [ { V.port_name = "o"; port_dir = V.Dir_out;
                      port_type = V.Signed 8 } ] };
            unit_arch =
              { V.arch_name = "rtl";
                of_entity = "bad";
                signals = [];
                components = [];
                body = [ V.Assign ("o", "missing_signal + 1") ] } } ];
      rom_inits = [] }
  in
  match Lint.check bad with
  | exception Lint.Error _ -> ()
  | _ -> Alcotest.fail "lint must reject undeclared names"

let test_lint_catches_multiple_drivers () =
  let bad =
    { V.design_name = "bad2";
      units =
        [ { V.unit_entity =
              { V.entity_name = "bad2";
                entity_ports =
                  [ { V.port_name = "a"; port_dir = V.Dir_in;
                      port_type = V.Signed 8 };
                    { V.port_name = "o"; port_dir = V.Dir_out;
                      port_type = V.Signed 8 } ] };
            unit_arch =
              { V.arch_name = "rtl";
                of_entity = "bad2";
                signals = [];
                components = [];
                body = [ V.Assign ("o", "a"); V.Assign ("o", "a") ] } } ];
      rom_inits = [] }
  in
  match Lint.check bad with
  | exception Lint.Error _ -> ()
  | _ -> Alcotest.fail "lint must reject multiple drivers"

(* ------------------------------------------------------------------ *)
(* LUT / ROM                                                           *)
(* ------------------------------------------------------------------ *)

let test_rom_generation () =
  let table = Lut_conv.cos_table ~in_bits:4 ~out_bits:8 () in
  let luts_sig =
    [ "cos",
      { Semant.lut_in = Ast.make_ikind ~signed:false 4;
        lut_out = Ast.make_ikind ~signed:true 8 } ]
  in
  let d =
    design_of ~luts_sig ~luts:[ table ]
      "void f(uint4 x, int8* y) { *y = cos(x); }" "f"
  in
  ignore (Lint.check d);
  let text = V.to_string d in
  Alcotest.(check bool) "rom entity" true (contains "entity rom_cos is" text);
  Alcotest.(check bool) "selected assignment" true
    (contains "with to_integer(addr) select" text);
  (* init file alongside *)
  let files = V.to_files d in
  Alcotest.(check bool) "init file present" true
    (List.exists (fun (name, _) -> name = "cos.init") files)

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Component library (paper §4.1)                                      *)
(* ------------------------------------------------------------------ *)

module Lib = Roccc_vhdl.Library

let count_occurrences needle hay =
  let re = Str.regexp_string needle in
  let rec loop pos acc =
    match Str.search_forward re hay pos with
    | exception Not_found -> acc
    | i -> loop (i + String.length needle) (acc + 1)
  in
  loop 0 0

let balanced text =
  (* every architecture/process opened is closed (openings start a line) *)
  count_occurrences "\narchitecture " text
  = count_occurrences "end architecture" text
  && count_occurrences ": process(" text = count_occurrences "end process" text
  && count_occurrences "\nentity " text = count_occurrences "end entity" text

let test_library_address_generator () =
  let text = Lib.address_generator_vhdl in
  Alcotest.(check bool) "entity present" true
    (contains "entity roccc_addr_gen is" text);
  Alcotest.(check bool) "generic total_words" true
    (contains "total_words" text);
  Alcotest.(check bool) "balanced" true (balanced text)

let test_library_smart_buffer () =
  let text = Lib.smart_buffer_vhdl ~window:5 ~element_bits:8 in
  Alcotest.(check bool) "entity present" true
    (contains "entity roccc_smart_buffer is" text);
  (* five window taps exported *)
  for i = 0 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "win%d port" i)
      true
      (contains (Printf.sprintf "win%d : out signed(7 downto 0)" i) text)
  done;
  Alcotest.(check bool) "balanced" true (balanced text)

let test_library_controller () =
  let text = Lib.controller_vhdl in
  Alcotest.(check bool) "states" true
    (contains "(s_filling, s_steady, s_draining, s_done)" text);
  Alcotest.(check bool) "balanced" true (balanced text)

let test_library_line_buffer () =
  let text =
    Lib.line_buffer_vhdl ~win_rows:3 ~win_cols:3 ~row_length:16
      ~element_bits:8
  in
  Alcotest.(check bool) "entity" true
    (contains "entity roccc_line_buffer is" text);
  (* 9 window taps *)
  for r = 0 to 2 do
    for c = 0 to 2 do
      Alcotest.(check bool)
        (Printf.sprintf "tap %d %d" r c)
        true
        (contains (Printf.sprintf "win_%d_%d : out signed(7 downto 0)" r c)
           text)
    done
  done;
  (* depth = 2 lines + 3 = 35 registers -> indices 0..34 *)
  Alcotest.(check bool) "register file depth" true
    (contains "array (0 to 34)" text);
  (* the newest tap is regs(0), the oldest is regs(34) *)
  Alcotest.(check bool) "newest tap" true (contains "win_2_2 <= regs(0);" text);
  Alcotest.(check bool) "oldest tap" true
    (contains "win_0_0 <= regs(34);" text);
  Alcotest.(check bool) "balanced" true (balanced text)

let test_library_system_wrapper () =
  let text =
    Lib.system_wrapper_vhdl ~dp_entity:"fir_dp" ~element_bits:8
      ~win_ports:[ "A0"; "A1"; "A2"; "A3"; "A4" ]
      ~out_ports:[ "Tmp0", 16 ]
      ~total_words:64 ~iterations:60 ~latency:3
  in
  Alcotest.(check bool) "system entity" true
    (contains "entity fir_dp_system is" text);
  List.iter
    (fun inst ->
      Alcotest.(check bool) (inst ^ " instantiated") true (contains inst text))
    [ "u_addr"; "u_buffer"; "u_control"; "u_datapath" ];
  Alcotest.(check bool) "balanced" true (balanced text)

(* ------------------------------------------------------------------ *)

let suites =
  [ "vhdl.render",
    [ Alcotest.test_case "entity and ports" `Quick test_render_entity;
      Alcotest.test_case "one component per node" `Quick
        test_one_component_per_node;
      Alcotest.test_case "feedback register" `Quick
        test_feedback_register_emitted ];
    "vhdl.lint",
    [ Alcotest.test_case "FIR design" `Quick test_lint_fir;
      Alcotest.test_case "if_else design" `Quick test_lint_if_else;
      Alcotest.test_case "accumulator design" `Quick test_lint_accumulator;
      Alcotest.test_case "nested branches design" `Quick test_lint_nested;
      Alcotest.test_case "rejects undeclared names" `Quick
        test_lint_catches_undeclared;
      Alcotest.test_case "rejects multiple drivers" `Quick
        test_lint_catches_multiple_drivers ];
    "vhdl.rom",
    [ Alcotest.test_case "ROM component + init file" `Quick
        test_rom_generation ];
    "vhdl.library",
    [ Alcotest.test_case "address generator FSM" `Quick
        test_library_address_generator;
      Alcotest.test_case "smart buffer shift register" `Quick
        test_library_smart_buffer;
      Alcotest.test_case "controller FSM" `Quick test_library_controller;
      Alcotest.test_case "2-D line buffer" `Quick test_library_line_buffer;
      Alcotest.test_case "Figure 2 system wrapper" `Quick
        test_library_system_wrapper ] ]
