(* The pass manager: verifier coverage, differential semantics checks,
   pass selection, IR dumps (golden files) and deterministic recompiles. *)

module Pass = Roccc_core.Pass
module Driver = Roccc_core.Driver
module Kernels = Roccc_core.Kernels
module Proc = Roccc_vm.Proc
module Instr = Roccc_vm.Instr

let quiet_config () =
  { (Pass.default_config ()) with Pass.on_dump = (fun _ _ -> ()) }

let compile_with config (b : Kernels.benchmark) : Driver.compiled =
  Driver.compile ~config
    ~options:(b.Kernels.tune Driver.default_options)
    ~luts:b.Kernels.luts ~entry:b.Kernels.entry b.Kernels.source

(* Acceptance criterion: every Table 1 kernel compiles with every IR
   verifier enabled, zero violations. *)
let test_verify_ir_gallery () =
  List.iter
    (fun (b : Kernels.benchmark) ->
      match
        compile_with { (quiet_config ()) with Pass.verify_ir = true } b
      with
      | (_ : Driver.compiled) -> ()
      | exception Pass.Error msg ->
        Alcotest.failf "verify-ir violation on %s: %s" b.Kernels.bench_name msg)
    Kernels.table1

(* Property: every registered HIR/VM/datapath pass preserves the kernel's
   interpreter semantics on deterministic vectors — the differential
   checker accepts the whole gallery. *)
let test_differential_gallery () =
  List.iter
    (fun (b : Kernels.benchmark) ->
      match
        compile_with
          { (quiet_config ()) with Pass.verify_ir = true; differential = true }
          b
      with
      | (_ : Driver.compiled) -> ()
      | exception Pass.Error msg ->
        Alcotest.failf "differential divergence on %s: %s"
          b.Kernels.bench_name msg)
    Kernels.table1

(* The clock-target sweep: the gallery must hold its verified/differential
   guarantees at every swept clock target, not just the default. *)
let test_target_sweep_gallery () =
  List.iter
    (fun (b : Kernels.benchmark) ->
      List.iter
        (fun tns ->
          let options =
            { (b.Kernels.tune Driver.default_options) with
              Driver.target_ns = tns }
          in
          match
            Driver.compile
              ~config:
                { (quiet_config ()) with
                  Pass.verify_ir = true;
                  differential = true }
              ~options ~luts:b.Kernels.luts ~entry:b.Kernels.entry
              b.Kernels.source
          with
          | (_ : Driver.compiled) -> ()
          | exception Pass.Error msg ->
            Alcotest.failf "%s at %.0f ns: %s" b.Kernels.bench_name tns msg)
        [ 3.0; 5.0; 8.0 ])
    Kernels.table1

(* ------------------------------------------------------------------ *)
(* Verifiers catch corrupted IR                                        *)
(* ------------------------------------------------------------------ *)

let contains needle hay =
  let re = Str.regexp_string needle in
  try
    ignore (Str.search_forward re hay 0);
    true
  with Not_found -> false

let test_verify_cfg_catches_undefined_use () =
  let p = Proc.create "broken" in
  let b = Proc.fresh_block p in
  let k = { Roccc_cfront.Ast.signed = true; bits = 32 } in
  b.Proc.instrs <- [ Instr.make ~dst:1 Instr.Add [ 41; 42 ] k ];
  match Proc.verify_cfg p with
  | () -> Alcotest.fail "expected Ill_formed"
  | exception Proc.Ill_formed msg ->
    Alcotest.(check bool)
      (Printf.sprintf "message %S names the register" msg)
      true (contains "v41" msg)

let test_kernel_verify_catches_missing_port () =
  let b = Kernels.fir in
  let c = Kernels.compile b in
  let kernel = c.Driver.kernel in
  let broken =
    { kernel with
      Roccc_hir.Kernel.outputs =
        List.map
          (fun (o : Roccc_hir.Kernel.output) ->
            { o with Roccc_hir.Kernel.port = "nonexistent_port" })
          kernel.Roccc_hir.Kernel.outputs }
  in
  (match Roccc_hir.Kernel.verify broken with
  | () -> Alcotest.fail "expected Ill_formed"
  | exception Roccc_hir.Kernel.Ill_formed _ -> ());
  Roccc_hir.Kernel.verify kernel

let test_graph_verify_catches_duplicate_def () =
  let b = Kernels.fir in
  let c = Kernels.compile b in
  let dp = c.Driver.dp in
  Roccc_datapath.Graph.verify dp;
  (* duplicate the first defining instruction somewhere later *)
  let def_instr =
    List.find_map
      (fun (n : Roccc_datapath.Graph.node) ->
        List.find_opt
          (fun (i : Instr.instr) -> i.Instr.dst <> None)
          n.Roccc_datapath.Graph.instrs)
      dp.Roccc_datapath.Graph.nodes
    |> Option.get
  in
  let last = List.nth dp.Roccc_datapath.Graph.nodes
      (List.length dp.Roccc_datapath.Graph.nodes - 1)
  in
  let saved = last.Roccc_datapath.Graph.instrs in
  last.Roccc_datapath.Graph.instrs <- saved @ [ def_instr ];
  (match Roccc_datapath.Graph.verify dp with
  | () -> Alcotest.fail "expected Ill_formed on duplicate definition"
  | exception Roccc_datapath.Graph.Ill_formed _ -> ());
  last.Roccc_datapath.Graph.instrs <- saved;
  Roccc_datapath.Graph.verify dp

let test_ssa_verify_dominance () =
  List.iter
    (fun (b : Kernels.benchmark) ->
      let c = Kernels.compile b in
      Roccc_analysis.Ssa.verify_dominance c.Driver.proc)
    Kernels.table1

let test_pipeline_verify () =
  List.iter
    (fun (b : Kernels.benchmark) ->
      let c = Kernels.compile b in
      Roccc_datapath.Pipeline.verify c.Driver.pipeline)
    Kernels.table1

(* ------------------------------------------------------------------ *)
(* Pass selection                                                      *)
(* ------------------------------------------------------------------ *)

let test_disable_pass () =
  let b = Kernels.fir in
  let config =
    { (quiet_config ()) with Pass.disabled_passes = [ "vm-optimize" ] }
  in
  let c = compile_with config b in
  Alcotest.(check bool)
    "vm-optimize skipped" false
    (List.mem "vm-optimize" c.Driver.pass_trace);
  let full = compile_with (quiet_config ()) b in
  Alcotest.(check bool)
    "vm-optimize runs by default" true
    (List.mem "vm-optimize" full.Driver.pass_trace)

let test_only_passes () =
  let b = Kernels.fir in
  let config =
    { (quiet_config ()) with Pass.only_passes = Some [ "constant-fold" ] }
  in
  let c = compile_with config b in
  (* required passes still run; the other optional ones don't *)
  Alcotest.(check bool)
    "constant-fold kept" true
    (List.mem "constant-fold" c.Driver.pass_trace);
  Alcotest.(check bool)
    "vm-optimize dropped" false
    (List.mem "vm-optimize" c.Driver.pass_trace);
  Alcotest.(check bool)
    "required lowering kept" true
    (List.mem "lower-to-suifvm" c.Driver.pass_trace)

let test_disable_required_pass_rejected () =
  let b = Kernels.fir in
  let config =
    { (quiet_config ()) with Pass.disabled_passes = [ "scalar-replacement" ] }
  in
  (match compile_with config b with
  | (_ : Driver.compiled) -> Alcotest.fail "expected rejection"
  | exception Pass.Error msg ->
    Alcotest.(check bool)
      "names the pass" true (contains "scalar-replacement" msg))

let test_unknown_pass_rejected () =
  let b = Kernels.fir in
  let config =
    { (quiet_config ()) with Pass.dump_after = [ "no-such-pass" ] }
  in
  match compile_with config b with
  | (_ : Driver.compiled) -> Alcotest.fail "expected rejection"
  | exception Pass.Error msg ->
    Alcotest.(check bool)
      "names the pass" true (contains "no-such-pass" msg)

(* Errors escaping a pass carry the failing pass's name. *)
let test_error_names_pass () =
  match
    Driver.compile ~entry:"k"
      "void k(int A[8], int B[8], int C[8]) { int i; for (i=0;i<8;i++) C[i] \
       = A[B[i]]; }"
  with
  | (_ : Driver.compiled) -> Alcotest.fail "expected an error"
  | exception Driver.Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S names a pass" msg)
      true
      (List.exists
         (fun p ->
           let pre = p ^ ":" in
           String.length msg >= String.length pre
           && String.sub msg 0 (String.length pre) = pre)
         (Pass.pass_names ()))

(* ------------------------------------------------------------------ *)
(* IR dumps: golden files                                              *)
(* ------------------------------------------------------------------ *)

let dump_passes =
  [ "parse"; "constant-fold"; "lower-to-suifvm"; "datapath-build";
    "pipelining"; "retiming" ]

let collect_dumps (b : Kernels.benchmark) : (string * string) list =
  let dumps = ref [] in
  let config =
    { (Pass.default_config ()) with
      Pass.dump_after = dump_passes;
      on_dump = (fun name text -> dumps := !dumps @ [ name, text ]) }
  in
  let (_ : Driver.compiled) = compile_with config b in
  (* the second constant-fold run overwrites the first: keep the last dump
     per pass name, in dump_passes order *)
  List.map
    (fun name ->
      match List.rev (List.filter (fun (n, _) -> n = name) !dumps) with
      | (_, text) :: _ -> name, text
      | [] -> Alcotest.failf "no dump for %s" name)
    dump_passes

let golden_path name = Printf.sprintf "golden/fir.%s.txt" name

let test_dump_golden () =
  List.iter
    (fun (name, text) ->
      let path = golden_path name in
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let expected = really_input_string ic n in
      close_in ic;
      Alcotest.(check string) (Printf.sprintf "dump after %s" name) expected text)
    (collect_dumps Kernels.fir)

(* ------------------------------------------------------------------ *)
(* Deterministic recompiles (resettable id generators)                 *)
(* ------------------------------------------------------------------ *)

let test_recompile_identical () =
  let b = Kernels.fir in
  let c1 = Kernels.compile b in
  let c2 = Kernels.compile b in
  Alcotest.(check string)
    "identical VHDL"
    (Roccc_vhdl.Ast.to_string c1.Driver.design)
    (Roccc_vhdl.Ast.to_string c2.Driver.design);
  Alcotest.(check string)
    "identical VM procedure"
    (Proc.to_string c1.Driver.proc)
    (Proc.to_string c2.Driver.proc);
  Alcotest.(check (list string))
    "identical trace" c1.Driver.pass_trace c2.Driver.pass_trace

let test_id_gen_registry () =
  let g = Roccc_util.Id_gen.create ~start:7 () in
  Roccc_util.Id_gen.register g;
  let (_ : int) = Roccc_util.Id_gen.fresh g in
  let (_ : int) = Roccc_util.Id_gen.fresh g in
  Alcotest.(check int) "advanced" 9 (Roccc_util.Id_gen.peek g);
  Roccc_util.Id_gen.reset_registered ();
  Alcotest.(check int) "reset to start" 7 (Roccc_util.Id_gen.peek g)

let suites =
  [ ( "passes",
      [ Alcotest.test_case "verify-ir over Table 1" `Slow test_verify_ir_gallery;
        Alcotest.test_case "differential over Table 1" `Slow
          test_differential_gallery;
        Alcotest.test_case "clock-target sweep over Table 1" `Slow
          test_target_sweep_gallery;
        Alcotest.test_case "cfg verifier catches undefined use" `Quick
          test_verify_cfg_catches_undefined_use;
        Alcotest.test_case "kernel verifier catches missing port" `Quick
          test_kernel_verify_catches_missing_port;
        Alcotest.test_case "graph verifier catches duplicate def" `Quick
          test_graph_verify_catches_duplicate_def;
        Alcotest.test_case "ssa dominance verifier over Table 1" `Slow
          test_ssa_verify_dominance;
        Alcotest.test_case "pipeline verifier over Table 1" `Slow
          test_pipeline_verify;
        Alcotest.test_case "disable-pass drops an optional pass" `Quick
          test_disable_pass;
        Alcotest.test_case "only-passes keeps required passes" `Quick
          test_only_passes;
        Alcotest.test_case "disabling a required pass is rejected" `Quick
          test_disable_required_pass_rejected;
        Alcotest.test_case "unknown pass name is rejected" `Quick
          test_unknown_pass_rejected;
        Alcotest.test_case "errors carry the failing pass name" `Quick
          test_error_names_pass;
        Alcotest.test_case "dump-after matches golden files" `Quick
          test_dump_golden;
        Alcotest.test_case "recompilation is byte-identical" `Quick
          test_recompile_identical;
        Alcotest.test_case "id generator registry resets" `Quick
          test_id_gen_registry ] ) ]
