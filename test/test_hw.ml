(* Tests for the smart buffer, address generators, controller, and the
   cycle-accurate execution-model simulator (paper Figure 2). *)

open Roccc_cfront
open Roccc_hir
open Roccc_vm
open Roccc_analysis
open Roccc_datapath
open Roccc_buffers
open Roccc_hw

let fir_source = Roccc_core.Kernels.paper_fir_source

let acc_source = Roccc_core.Kernels.paper_acc_source

(* Compile a kernel all the way to datapath + pipeline. *)
let compile src name =
  let prog = Parser.parse_program src in
  let _ = Semant.check_program prog in
  let f = List.find (fun g -> g.Ast.fname = name) prog.Ast.funcs in
  let k = Feedback.annotate (Scalar_replacement.run prog f) in
  let proc = Lower.lower_kernel k in
  let _ = Ssa.convert proc in
  let dp = Builder.build proc in
  let w = Widths.infer dp in
  let pipeline = Pipeline.build dp w in
  k, dp, pipeline

(* ------------------------------------------------------------------ *)
(* Smart buffer                                                        *)
(* ------------------------------------------------------------------ *)

let fir_buffer_config =
  { Smart_buffer.element_bits = 32;
    element_signed = true;
    bus_elements = 1;
    array_dims = [ 21 ];
    window_offsets = [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ]; [ 4 ] ];
    stride = [ 1 ];
    iterations = [ 17 ];
    lower = [ 0 ] }

let test_buffer_fetches_each_element_once () =
  let b = Smart_buffer.create fir_buffer_config in
  let windows = ref 0 in
  for i = 0 to 20 do
    Smart_buffer.push b [| Int64.of_int (i * 10) |];
    while Option.is_some (Smart_buffer.pop_window b) do incr windows done
  done;
  Alcotest.(check int) "21 fetches" 21
    (Smart_buffer.stats b).Smart_buffer.fetched_elements;
  Alcotest.(check int) "17 windows" 17 !windows;
  Alcotest.(check bool) "finished" true (Smart_buffer.finished b)

let test_buffer_window_contents () =
  let b = Smart_buffer.create fir_buffer_config in
  for i = 0 to 4 do
    Smart_buffer.push b [| Int64.of_int (100 + i) |]
  done;
  match Smart_buffer.pop_window b with
  | Some w ->
    Alcotest.(check (list int64)) "first window"
      [ 100L; 101L; 102L; 103L; 104L ]
      (Array.to_list w)
  | None -> Alcotest.fail "window should be ready after 5 elements"

let test_buffer_not_ready_early () =
  let b = Smart_buffer.create fir_buffer_config in
  for i = 0 to 3 do
    Smart_buffer.push b [| Int64.of_int i |]
  done;
  Alcotest.(check bool) "not ready with 4 of 5" false
    (Smart_buffer.window_ready b)

let test_buffer_reuse_ratio () =
  let b = Smart_buffer.create fir_buffer_config in
  for i = 0 to 20 do
    Smart_buffer.push b [| Int64.of_int i |];
    while Option.is_some (Smart_buffer.pop_window b) do () done
  done;
  (* naive: 17 windows x 5 elements = 85; smart: 21 fetches *)
  Alcotest.(check int) "naive fetches" 85
    (Smart_buffer.naive_fetches fir_buffer_config);
  let ratio = Smart_buffer.reuse_ratio b in
  Alcotest.(check bool) "ratio ~ 4.05" true (ratio > 4.0 && ratio < 4.1)

let test_buffer_capacity () =
  (* 1-D: extent + bus - 1 *)
  Alcotest.(check int) "FIR capacity" 5
    (Smart_buffer.capacity_elements fir_buffer_config);
  (* 2-D 2x2 window on an 8-wide array: one line + 2 + bus - 1 *)
  let cfg2 =
    { Smart_buffer.element_bits = 8;
      element_signed = true;
      bus_elements = 1;
      array_dims = [ 6; 8 ];
      window_offsets = [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ];
      stride = [ 1; 1 ];
      iterations = [ 5; 7 ];
      lower = [ 0; 0 ] }
  in
  Alcotest.(check int) "2-D line buffer capacity" 10
    (Smart_buffer.capacity_elements cfg2);
  Alcotest.(check int) "capacity bits" 80 (Smart_buffer.capacity_bits cfg2)

let test_buffer_two_dim_windows () =
  let cfg =
    { Smart_buffer.element_bits = 32;
      element_signed = true;
      bus_elements = 1;
      array_dims = [ 3; 3 ];
      window_offsets = [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ];
      stride = [ 1; 1 ];
      iterations = [ 2; 2 ];
      lower = [ 0; 0 ] }
  in
  let b = Smart_buffer.create cfg in
  (* data: 0..8 row-major *)
  let windows = ref [] in
  for i = 0 to 8 do
    Smart_buffer.push b [| Int64.of_int i |];
    match Smart_buffer.pop_window b with
    | Some w -> windows := !windows @ [ Array.to_list w ]
    | None -> ()
  done;
  (* drain the rest *)
  let rec drain () =
    match Smart_buffer.pop_window b with
    | Some w ->
      windows := !windows @ [ Array.to_list w ];
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "4 windows" 4 (List.length !windows);
  Alcotest.(check (list (list int64))) "window contents"
    [ [ 0L; 1L; 3L; 4L ]; [ 1L; 2L; 4L; 5L ];
      [ 3L; 4L; 6L; 7L ]; [ 4L; 5L; 7L; 8L ] ]
    !windows

let test_buffer_stride_two () =
  (* Non-overlapping stride-2 windows of width 2 over 8 elements. *)
  let cfg =
    { Smart_buffer.element_bits = 32;
      element_signed = true;
      bus_elements = 2;
      array_dims = [ 8 ];
      window_offsets = [ [ 0 ]; [ 1 ] ];
      stride = [ 2 ];
      iterations = [ 4 ];
      lower = [ 0 ] }
  in
  let b = Smart_buffer.create cfg in
  let windows = ref [] in
  for i = 0 to 3 do
    Smart_buffer.push b [| Int64.of_int (2 * i); Int64.of_int ((2 * i) + 1) |];
    let rec drain () =
      match Smart_buffer.pop_window b with
      | Some w ->
        windows := !windows @ [ Array.to_list w ];
        drain ()
      | None -> ()
    in
    drain ()
  done;
  Alcotest.(check (list (list int64))) "stride-2 windows"
    [ [ 0L; 1L ]; [ 2L; 3L ]; [ 4L; 5L ]; [ 6L; 7L ] ]
    !windows;
  (* no reuse at stride 2: ratio = 1 *)
  Alcotest.(check bool) "no reuse" true
    (abs_float (Smart_buffer.reuse_ratio b -. 1.0) < 0.001)

(* ------------------------------------------------------------------ *)
(* Address generators                                                  *)
(* ------------------------------------------------------------------ *)

let test_input_gen_covers_array_once () =
  let g = Address_gen.create_input ~array_dims:[ 10 ] ~bus_elements:3 in
  let rec collect acc =
    match Address_gen.next_read g with
    | Some { Address_gen.base_address; count } ->
      collect (acc @ List.init count (fun i -> base_address + i))
    | None -> acc
  in
  let addrs = collect [] in
  Alcotest.(check (list int)) "all addresses once"
    (List.init 10 (fun i -> i))
    addrs

let test_output_gen_sequential () =
  let g =
    Address_gen.create_output ~out_dims:[ 17 ] ~iterations:[ 17 ]
      ~stride:[ 1 ] ~lower:[ 0 ] ~offset:[ 0 ]
  in
  let rec collect acc =
    match Address_gen.next_write g with
    | Some a -> collect (acc @ [ a ])
    | None -> acc
  in
  Alcotest.(check (list int)) "sequential stores"
    (List.init 17 (fun i -> i))
    (collect [])

let test_output_gen_two_dim_offset () =
  let g =
    Address_gen.create_output ~out_dims:[ 4; 4 ] ~iterations:[ 2; 2 ]
      ~stride:[ 1; 1 ] ~lower:[ 0; 0 ] ~offset:[ 1; 1 ]
  in
  let rec collect acc =
    match Address_gen.next_write g with
    | Some a -> collect (acc @ [ a ])
    | None -> acc
  in
  (* positions (1,1) (1,2) (2,1) (2,2) -> 5 6 9 10 *)
  Alcotest.(check (list int)) "offset stores" [ 5; 6; 9; 10 ] (collect [])

(* ------------------------------------------------------------------ *)
(* Engine end-to-end                                                   *)
(* ------------------------------------------------------------------ *)

let fir_reference a i =
  (3 * a.(i)) + (5 * a.(i + 1)) + (7 * a.(i + 2)) + (9 * a.(i + 3)) - a.(i + 4)

let test_engine_fir_matches_interp () =
  let k, dp, pipeline = compile fir_source "fir" in
  let input = Array.init 21 (fun i -> (i * 13) - 50) in
  let r =
    Engine.simulate k ~dp ~pipeline
      ~arrays:[ "A", Array.map Int64.of_int input ]
  in
  let c = List.assoc "C" r.Engine.output_arrays in
  for i = 0 to 16 do
    Alcotest.(check int64)
      (Printf.sprintf "C[%d]" i)
      (Int64.of_int (fir_reference input i))
      c.(i)
  done;
  Alcotest.(check int) "17 launches" 17 r.Engine.launches;
  Alcotest.(check int) "each element fetched once" 21 r.Engine.memory_reads;
  Alcotest.(check int) "17 stores" 17 r.Engine.memory_writes

let test_engine_fir_cycle_count () =
  let k, dp, pipeline = compile fir_source "fir" in
  let input = Array.init 21 Int64.of_int in
  let r = Engine.simulate k ~dp ~pipeline ~arrays:[ "A", input ] in
  (* fill (5 window elements + bram latency) + 17 steady cycles + drain *)
  let lower_bound = 17 + r.Engine.pipeline_latency in
  Alcotest.(check bool)
    (Printf.sprintf "cycles %d >= %d" r.Engine.cycles lower_bound)
    true
    (r.Engine.cycles >= lower_bound);
  Alcotest.(check bool) "cycles reasonable" true (r.Engine.cycles < 120);
  (* II = 1: steady-state throughput of one window per cycle *)
  Alcotest.(check bool) "reuse ratio ~4" true (r.Engine.reuse_ratio > 3.9)

let test_engine_accumulator () =
  let k, dp, pipeline = compile acc_source "acc" in
  let input = Array.init 32 (fun i -> Int64.of_int ((i * 3) - 20)) in
  let r = Engine.simulate k ~dp ~pipeline ~arrays:[ "A", input ] in
  let want = Array.fold_left (fun s v -> Int64.add s v) 0L input in
  Alcotest.(check int64) "final sum" want
    (List.assoc "out" r.Engine.scalar_outputs)

let test_engine_mul_acc_conditional () =
  let src =
    "int acc = 0;\n\
     void mul_acc(int A[16], int B[16], int ND[16], int* out) {\n\
    \  int i;\n\
    \  for (i = 0; i < 16; i++) {\n\
    \    if (ND[i]) { acc = acc + A[i] * B[i]; }\n\
    \  }\n\
    \  *out = acc;\n\
     }"
  in
  let k, dp, pipeline = compile src "mul_acc" in
  let a = Array.init 16 (fun i -> Int64.of_int (i + 1)) in
  let b = Array.init 16 (fun i -> Int64.of_int ((i * 2) + 1)) in
  let nd = Array.init 16 (fun i -> Int64.of_int (i mod 3)) in
  let r =
    Engine.simulate k ~dp ~pipeline ~arrays:[ "A", a; "B", b; "ND", nd ]
  in
  let want = ref 0L in
  for i = 0 to 15 do
    if not (Int64.equal nd.(i) 0L) then
      want := Int64.add !want (Int64.mul a.(i) b.(i))
  done;
  Alcotest.(check int64) "conditional accumulation" !want
    (List.assoc "out" r.Engine.scalar_outputs)

let test_engine_two_dim_window () =
  let src =
    "void blur(int A[6][6], int C[5][5]) {\n\
    \  int i, j;\n\
    \  for (i = 0; i < 5; i++) {\n\
    \    for (j = 0; j < 5; j++) {\n\
    \      C[i][j] = A[i][j] + A[i][j+1] + A[i+1][j] + A[i+1][j+1];\n\
    \    }\n\
    \  }\n\
     }"
  in
  let k, dp, pipeline = compile src "blur" in
  let a = Array.init 36 (fun i -> Int64.of_int (i * i mod 97)) in
  let r = Engine.simulate k ~dp ~pipeline ~arrays:[ "A", a ] in
  let c = List.assoc "C" r.Engine.output_arrays in
  (* reference from the interpreter *)
  let o = Interp.run_source src "blur" ~arrays:[ "A", a ] in
  let c_ref = List.assoc "C" o.Interp.arrays in
  Alcotest.(check bool) "2-D blur matches interpreter" true (c = c_ref);
  Alcotest.(check int) "36 fetches for 25 windows of 4" 36
    r.Engine.memory_reads

let test_engine_block_kernel_dct_style () =
  (* Fully unrolled 4-point transform: all outputs in one launch. *)
  let src =
    "void t4(int X[4], int Y[4]) {\n\
    \  Y[0] = X[0] + X[1] + X[2] + X[3];\n\
    \  Y[1] = X[0] - X[1] + X[2] - X[3];\n\
    \  Y[2] = X[0] + X[1] - X[2] - X[3];\n\
    \  Y[3] = X[0] - X[1] - X[2] + X[3];\n\
     }"
  in
  let k, dp, pipeline = compile src "t4" in
  Alcotest.(check int) "4 outputs per launch" 4
    (List.length k.Kernel.outputs);
  let x = [| 5L; 3L; 2L; 7L |] in
  let r = Engine.simulate k ~dp ~pipeline ~arrays:[ "X", x ] in
  let y = List.assoc "Y" r.Engine.output_arrays in
  Alcotest.(check (list int64)) "block transform"
    [ 17L; -3L; -1L; 7L ]
    (Array.to_list y);
  Alcotest.(check int) "single launch" 1 r.Engine.launches

let test_engine_controller_trace () =
  let k, dp, pipeline = compile fir_source "fir" in
  let input = Array.init 21 Int64.of_int in
  let r = Engine.simulate k ~dp ~pipeline ~arrays:[ "A", input ] in
  let states = List.map snd r.Engine.controller_trace in
  (* idle (start) -> filling -> steady -> draining -> done *)
  Alcotest.(check bool) "reaches done" true (List.mem "done" states);
  Alcotest.(check bool) "passes steady" true (List.mem "steady" states)

let test_engine_bus_width_speeds_fill () =
  let k, dp, pipeline = compile fir_source "fir" in
  let input = Array.init 21 Int64.of_int in
  let slow =
    Engine.simulate k ~dp ~pipeline ~bus_elements:1 ~arrays:[ "A", input ]
  in
  let fast =
    Engine.simulate k ~dp ~pipeline ~bus_elements:4 ~arrays:[ "A", input ]
  in
  Alcotest.(check bool) "wider bus is not slower" true
    (fast.Engine.cycles <= slow.Engine.cycles);
  Alcotest.(check bool) "same results" true
    (List.assoc "C" fast.Engine.output_arrays
    = List.assoc "C" slow.Engine.output_arrays)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let qcheck_case = QCheck_alcotest.to_alcotest

let prop_engine_fir_random =
  QCheck.Test.make ~count:25 ~name:"engine FIR equals interpreter"
    QCheck.(array_of_size (Gen.return 21) (int_range (-500) 500))
    (fun input ->
      let k, dp, pipeline = compile fir_source "fir" in
      let r =
        Engine.simulate k ~dp ~pipeline
          ~arrays:[ "A", Array.map Int64.of_int input ]
      in
      let c = List.assoc "C" r.Engine.output_arrays in
      let o =
        Interp.run_source fir_source "fir"
          ~arrays:[ "A", Array.map Int64.of_int input ]
      in
      c = List.assoc "C" o.Interp.arrays)

let prop_buffer_windows_match_direct_indexing =
  QCheck.Test.make ~count:50
    ~name:"smart buffer windows equal direct array windows"
    QCheck.(pair (int_range 2 6) (int_range 1 3))
    (fun (extent, bus) ->
      let n = 24 in
      let iterations = n - extent + 1 in
      let cfg =
        { Smart_buffer.element_bits = 32;
          element_signed = true;
          bus_elements = bus;
          array_dims = [ n ];
          window_offsets = List.init extent (fun i -> [ i ]);
          stride = [ 1 ];
          iterations = [ iterations ];
          lower = [ 0 ] }
      in
      let b = Smart_buffer.create cfg in
      let data = Array.init n (fun i -> Int64.of_int (i * 7)) in
      let out = ref [] in
      let pos = ref 0 in
      while not (Smart_buffer.finished b) do
        if !pos < n then begin
          let count = min bus (n - !pos) in
          Smart_buffer.push b (Array.sub data !pos count);
          pos := !pos + count
        end;
        let rec drain () =
          match Smart_buffer.pop_window b with
          | Some w ->
            out := !out @ [ w ];
            drain ()
          | None -> ()
        in
        drain ()
      done;
      List.length !out = iterations
      && List.for_all
           (fun (idx, w) ->
             Array.to_list w
             = List.init extent (fun j -> data.(idx + j)))
           (List.mapi (fun i w -> i, w) !out))

(* ------------------------------------------------------------------ *)

let suites =
  [ "buffers.smart_buffer",
    [ Alcotest.test_case "each element fetched once" `Quick
        test_buffer_fetches_each_element_once;
      Alcotest.test_case "window contents" `Quick test_buffer_window_contents;
      Alcotest.test_case "not ready early" `Quick test_buffer_not_ready_early;
      Alcotest.test_case "reuse ratio (FIR ~4x)" `Quick
        test_buffer_reuse_ratio;
      Alcotest.test_case "register capacity" `Quick test_buffer_capacity;
      Alcotest.test_case "2-D windows" `Quick test_buffer_two_dim_windows;
      Alcotest.test_case "stride 2, bus 2" `Quick test_buffer_stride_two ];
    "buffers.address_gen",
    [ Alcotest.test_case "input covers array once" `Quick
        test_input_gen_covers_array_once;
      Alcotest.test_case "sequential output" `Quick test_output_gen_sequential;
      Alcotest.test_case "2-D output with offset" `Quick
        test_output_gen_two_dim_offset ];
    "hw.engine",
    [ Alcotest.test_case "FIR matches interpreter" `Quick
        test_engine_fir_matches_interp;
      Alcotest.test_case "FIR cycle counts" `Quick test_engine_fir_cycle_count;
      Alcotest.test_case "accumulator" `Quick test_engine_accumulator;
      Alcotest.test_case "mul_acc conditional feedback" `Quick
        test_engine_mul_acc_conditional;
      Alcotest.test_case "2-D window kernel" `Quick test_engine_two_dim_window;
      Alcotest.test_case "block kernel (DCT-style, 4 out/cycle)" `Quick
        test_engine_block_kernel_dct_style;
      Alcotest.test_case "controller trace" `Quick
        test_engine_controller_trace;
      Alcotest.test_case "bus width" `Quick test_engine_bus_width_speeds_fill ];
    "hw.properties",
    [ qcheck_case prop_engine_fir_random;
      qcheck_case prop_buffer_windows_match_direct_indexing ] ]
