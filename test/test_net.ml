(* Tests for the process-network subsystem: FIFO channels, the
   composition front end, rate analysis / FIFO sizing, the multi-engine
   co-simulator with backpressure, and the network VHDL top level. *)

open Roccc_buffers
open Roccc_net

let quiet_config () =
  { (Roccc_core.Pass.default_config ()) with
    Roccc_core.Pass.on_dump = (fun _ _ -> ()) }

let checked_config () =
  { (quiet_config ()) with
    Roccc_core.Pass.verify_ir = true;
    differential = true }

(* ------------------------------------------------------------------ *)
(* FIFO channel                                                        *)
(* ------------------------------------------------------------------ *)

let test_fifo_basic () =
  let f = Fifo.create ~name:"ch" ~depth:3 in
  Alcotest.(check int) "empty length" 0 (Fifo.length f);
  Alcotest.(check int) "empty space" 3 (Fifo.space f);
  Alcotest.(check bool) "is_empty" true (Fifo.is_empty f);
  Alcotest.(check (option int64)) "pop empty" None (Fifo.pop f);
  Fifo.push f 10L;
  Fifo.push f 20L;
  Alcotest.(check int) "length 2" 2 (Fifo.length f);
  Alcotest.(check int) "space 1" 1 (Fifo.space f);
  Alcotest.(check (option int64)) "fifo order" (Some 10L) (Fifo.pop f);
  Fifo.push f 30L;
  Fifo.push f 40L;
  Alcotest.(check bool) "is_full" true (Fifo.is_full f);
  Alcotest.(check (option int64)) "pop 20" (Some 20L) (Fifo.pop f);
  Alcotest.(check (option int64)) "pop 30" (Some 30L) (Fifo.pop f);
  Alcotest.(check (option int64)) "pop 40" (Some 40L) (Fifo.pop f);
  Alcotest.(check int) "pushed counter" 4 f.Fifo.pushed;
  Alcotest.(check int) "popped counter" 4 f.Fifo.popped;
  Alcotest.(check int) "high water" 3 f.Fifo.high_water

let test_fifo_guards () =
  (match Fifo.create ~name:"bad" ~depth:0 with
  | exception Fifo.Error _ -> ()
  | _ -> Alcotest.fail "depth 0 accepted");
  let f = Fifo.create ~name:"tiny" ~depth:1 in
  Fifo.push f 1L;
  (match Fifo.push f 2L with
  | exception Fifo.Error _ -> ()
  | () -> Alcotest.fail "push into a full channel accepted");
  Fifo.note_full_stall f;
  Fifo.note_empty_stall f;
  Fifo.note_empty_stall f;
  Alcotest.(check int) "full stalls" 1 f.Fifo.full_stalls;
  Alcotest.(check int) "empty stalls" 2 f.Fifo.empty_stalls

(* ------------------------------------------------------------------ *)
(* Front end: the composition form                                     *)
(* ------------------------------------------------------------------ *)

let test_pipeline_parse () =
  let pls = Net.pipelines_of_source Net.gallery_source in
  Alcotest.(check int) "one pipeline" 1 (List.length pls);
  let pl = List.hd pls in
  Alcotest.(check string) "name" "firsmooth" pl.Roccc_cfront.Ast.pl_name;
  Alcotest.(check (list string))
    "stages" [ "fir"; "smooth" ] pl.Roccc_cfront.Ast.pl_stages;
  (* the pretty printer round-trips the declaration *)
  let printed =
    Roccc_cfront.Pretty.program_to_string
      (Roccc_cfront.Parser.parse_program Net.gallery_source)
  in
  Alcotest.(check bool) "pretty prints decl" true
    (let needle = "pipeline firsmooth = fir -> smooth;" in
     let n = String.length needle and h = String.length printed in
     let rec go i = i + n <= h && (String.sub printed i n = needle || go (i + 1)) in
     go 0)

let test_pipeline_errors () =
  (match Net.find_pipeline ~name:"missing" Net.gallery_source with
  | exception Net.Error _ -> ()
  | _ -> Alcotest.fail "missing pipeline accepted");
  (* a one-stage pipeline is a parse error *)
  (match Net.pipelines_of_source "void f(int A[4], int B[2]) { int i; for (i=0;i<2;i=i+1) { B[i]=A[i]; } }\npipeline p = f;\n" with
  | exception Net.Error _ -> ()
  | _ -> Alcotest.fail "one-stage pipeline accepted");
  (* a stage that is not a kernel in the source *)
  (match Net.plan ~name:"ghost"
           (Net.gallery_source ^ "pipeline ghost = fir -> nothere;\n")
   with
  | exception Net.Error msg ->
    Alcotest.(check bool) "names the stage" true
      (let needle = "nothere" in
       let n = String.length needle and h = String.length msg in
       let rec go i = i + n <= h && (String.sub msg i n = needle || go (i + 1)) in
       go 0)
  | _ -> Alcotest.fail "unknown stage accepted")

(* ------------------------------------------------------------------ *)
(* Planning: rate analysis and FIFO sizing                             *)
(* ------------------------------------------------------------------ *)

let gallery_plan ?stage_options () =
  Net.plan ~config:(quiet_config ()) ?stage_options
    ~name:Net.gallery_pipeline Net.gallery_source

let test_plan_shape () =
  let net = gallery_plan () in
  Alcotest.(check int) "two stages" 2 (List.length net.Net.net_stages);
  Alcotest.(check int) "one channel" 1 (List.length net.Net.net_channels);
  let fir = List.hd net.Net.net_stages in
  let ch = List.hd net.Net.net_channels in
  Alcotest.(check string) "producer in" "A" fir.Net.sg_in_array;
  Alcotest.(check string) "producer out" "C" fir.Net.sg_out_array;
  Alcotest.(check int) "channel elements" 16 ch.Net.ch_elements;
  Alcotest.(check int) "producer rate" 1 ch.Net.ch_producer_rate;
  Alcotest.(check int) "consumer intake" 1 ch.Net.ch_consumer_intake;
  (* the sizing rule: depth = min(N, rate*(latency+1) + intake) *)
  let expect =
    min ch.Net.ch_elements
      ((ch.Net.ch_producer_rate * (ch.Net.ch_producer_latency + 1))
      + ch.Net.ch_consumer_intake)
  in
  Alcotest.(check int) "depth matches the rule" expect ch.Net.ch_depth;
  Alcotest.(check int) "min depth = depth" ch.Net.ch_depth ch.Net.ch_min_depth;
  (* the acceptance criterion: the sized FIFO beats the full buffer *)
  Alcotest.(check bool) "sized depth < full buffer" true
    (ch.Net.ch_depth < ch.Net.ch_elements)

let test_min_depth_rule () =
  Alcotest.(check int) "capped at elements" 8
    (Net.min_depth ~rate:4 ~latency:10 ~intake:2 ~elements:8);
  Alcotest.(check int) "rate*(lat+1)+intake" 11
    (Net.min_depth ~rate:2 ~latency:4 ~intake:1 ~elements:64)

(* ------------------------------------------------------------------ *)
(* Co-simulation vs the sequential composition                         *)
(* ------------------------------------------------------------------ *)

let test_network_verify () =
  (* under the checked config: IR verification + differential testing of
     every stage compile, then network co-sim vs sequential semantics *)
  let net =
    Net.plan ~config:(checked_config ()) ~name:Net.gallery_pipeline
      Net.gallery_source
  in
  let arrays = Net.gallery_arrays () in
  let diffs = Net.verify ~arrays net in
  Alcotest.(check (list string)) "network == sequential" [] diffs;
  (* and the simulated values really are the FIR+smooth composition *)
  let sim = Net.simulate ~arrays net in
  let e = List.assoc "E" sim.Net.nr_output_arrays in
  let a = List.assoc "A" arrays in
  let fir i =
    Int64.to_int a.(i) * 3 + (5 * Int64.to_int a.(i + 1))
    + (7 * Int64.to_int a.(i + 2))
    + (9 * Int64.to_int a.(i + 3))
    - Int64.to_int a.(i + 4)
  in
  let expect i = Int64.of_int ((fir i + (2 * fir (i + 1)) + fir (i + 2)) asr 2) in
  Alcotest.(check int) "14 outputs" 14 (Array.length e);
  Array.iteri
    (fun i v ->
      Alcotest.(check int64) (Printf.sprintf "E[%d]" i) (expect i) v)
    e;
  (* every element crossed the channel exactly once *)
  let ch = List.hd sim.Net.nr_channels in
  Alcotest.(check int) "16 elements through the fifo" 16 ch.Net.cs_pushed;
  Alcotest.(check bool) "high water within depth" true
    (ch.Net.cs_high_water <= ch.Net.cs_depth)

let test_depth_one_backpressure () =
  (* stress: force the channel down to a single element. The producer
     must stall on credit, the consumer on data, and the result must
     still be byte-identical to the sequential composition. *)
  let net = gallery_plan () in
  let arrays = Net.gallery_arrays () in
  let diffs = Net.verify ~arrays ~depths:[ 1 ] net in
  Alcotest.(check (list string)) "depth 1 still correct" [] diffs;
  let sim = Net.simulate ~arrays ~depths:[ 1 ] net in
  let ch = List.hd sim.Net.nr_channels in
  Alcotest.(check int) "depth override" 1 ch.Net.cs_depth;
  Alcotest.(check bool) "high water <= 1" true (ch.Net.cs_high_water <= 1);
  Alcotest.(check bool) "producer stalled on full" true
    (ch.Net.cs_full_stalls > 0);
  Alcotest.(check int) "still 16 elements" 16 ch.Net.cs_pushed;
  (* a throttled network takes longer than the sized one *)
  let sized = Net.simulate ~arrays net in
  Alcotest.(check bool) "sized run is faster" true
    (sized.Net.nr_cycles < sim.Net.nr_cycles)

let test_rate_mismatch () =
  (* producer faster than consumer: unroll fir by 2 with a 2-element bus
     (2 outputs per launch) against a bus-1 smooth. The producer must
     hit full-stalls and the output must stay correct. *)
  let opts = Roccc_core.Driver.default_options in
  let fast =
    { opts with
      Roccc_core.Driver.unroll_outer_factor = 2;
      bus_elements = 2 }
  in
  let net =
    gallery_plan ~stage_options:[ "fir", fast ] ()
  in
  let ch = List.hd net.Net.net_channels in
  Alcotest.(check int) "unrolled producer rate" 2 ch.Net.ch_producer_rate;
  let arrays = Net.gallery_arrays () in
  let diffs = Net.verify ~arrays net in
  Alcotest.(check (list string)) "mismatched rates still correct" [] diffs;
  (* throttle the channel to one burst to expose sustained mismatch *)
  let tight = ch.Net.ch_producer_rate in
  let diffs = Net.verify ~arrays ~depths:[ tight ] net in
  Alcotest.(check (list string)) "tight channel still correct" [] diffs;
  let sim = Net.simulate ~arrays ~depths:[ tight ] net in
  let cs = List.hd sim.Net.nr_channels in
  Alcotest.(check bool) "producer stalled" true (cs.Net.cs_full_stalls > 0)

let test_deadlock_rejected () =
  let opts = Roccc_core.Driver.default_options in
  let fast =
    { opts with
      Roccc_core.Driver.unroll_outer_factor = 2;
      bus_elements = 2 }
  in
  let net = gallery_plan ~stage_options:[ "fir", fast ] () in
  match Net.simulate ~arrays:(Net.gallery_arrays ()) ~depths:[ 1 ] net with
  | exception Net.Error msg ->
    Alcotest.(check bool) "names the deadlock" true
      (let needle = "deadlock" in
       let n = String.length needle and h = String.length msg in
       let rec go i = i + n <= h && (String.sub msg i n = needle || go (i + 1)) in
       go 0)
  | _ -> Alcotest.fail "sub-burst depth accepted"

(* ------------------------------------------------------------------ *)
(* Golden dump                                                         *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_describe () =
  let net =
    Net.plan ~config:(checked_config ()) ~name:Net.gallery_pipeline
      Net.gallery_source
  in
  let got = Net.describe net in
  let want = read_file "golden/stream.net.txt" in
  Alcotest.(check string) "golden network plan (tools/gen_golden.ml)" want got

(* ------------------------------------------------------------------ *)
(* VHDL top level                                                      *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_network_vhdl () =
  let net = gallery_plan () in
  let vhdl = Net.network_vhdl net in
  Alcotest.(check bool) "fifo entity" true
    (contains vhdl "entity roccc_fifo is");
  Alcotest.(check bool) "net entity" true
    (contains vhdl "entity firsmooth_net is");
  let ch = List.hd net.Net.net_channels in
  Alcotest.(check bool) "sized depth generic" true
    (contains vhdl (Printf.sprintf "depth => %d" ch.Net.ch_depth));
  Alcotest.(check bool) "fifo instance" true (contains vhdl "entity work.roccc_fifo");
  (* both stage systems instantiated *)
  Alcotest.(check bool) "fir stage" true (contains vhdl "entity work.fir_dp_system");
  Alcotest.(check bool) "smooth stage" true (contains vhdl "entity work.smooth_dp_system");
  (* wr gating: producer writes only while running and with space *)
  Alcotest.(check bool) "wr gated on full" true
    (contains vhdl "ch0_wr <= (not st0_done) and (not ch0_full);")

let suites =
  [ ( "net",
      [ Alcotest.test_case "fifo basic" `Quick test_fifo_basic;
        Alcotest.test_case "fifo guards" `Quick test_fifo_guards;
        Alcotest.test_case "pipeline parse" `Quick test_pipeline_parse;
        Alcotest.test_case "pipeline errors" `Quick test_pipeline_errors;
        Alcotest.test_case "plan shape" `Quick test_plan_shape;
        Alcotest.test_case "min depth rule" `Quick test_min_depth_rule;
        Alcotest.test_case "network verify" `Quick test_network_verify;
        Alcotest.test_case "depth-1 backpressure" `Quick
          test_depth_one_backpressure;
        Alcotest.test_case "rate mismatch" `Quick test_rate_mismatch;
        Alcotest.test_case "deadlock rejected" `Quick test_deadlock_rejected;
        Alcotest.test_case "golden describe" `Quick test_golden_describe;
        Alcotest.test_case "network vhdl" `Quick test_network_vhdl ] ) ]
