(* Tests for the HIR passes: constant folding, loop transforms, inlining,
   scalar replacement, feedback detection, LUT conversion. *)

open Roccc_cfront
open Roccc_hir

let parse = Parser.parse_program
let parse_fn = Parser.parse_func

(* Interpreter equivalence helper: both programs produce identical outcomes
   on the given inputs. *)
let same_behaviour ?(luts = []) ?(lut_funcs = []) ~fname ~scalars ~arrays src1
    src2 =
  ignore luts;
  let run src =
    Interp.run_source ~lut_funcs src fname ~scalars ~arrays
  in
  let o1 = run src1 and o2 = run src2 in
  o1.Interp.return_value = o2.Interp.return_value
  && o1.Interp.pointer_outputs = o2.Interp.pointer_outputs
  && List.for_all2
       (fun (n1, a1) (n2, a2) -> n1 = n2 && a1 = a2)
       o1.Interp.arrays o2.Interp.arrays

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

let fold_of_src src =
  let f = parse_fn src in
  Const_fold.optimize_func f

let test_fold_constants () =
  let f = fold_of_src "int f(int* o) { int a; a = 2 + 3 * 4; *o = a; return 0; }" in
  let printed = Pretty.func_to_string f in
  Alcotest.(check bool) "folded to 14" true
    (let found = ref false in
     String.iteri
       (fun i _ ->
         if i + 2 <= String.length printed && String.sub printed i 2 = "14"
         then found := true)
       printed;
     !found)

let test_fold_identities () =
  let e src =
    match (parse_fn ("int f(int x) { return " ^ src ^ "; }")).Ast.body with
    | [ Ast.Sreturn (Some e) ] -> Const_fold.fold_expr e
    | _ -> Alcotest.fail "bad shape"
  in
  Alcotest.(check bool) "x+0" true (Ast.equal_expr (e "x + 0") (Ast.Var "x"));
  Alcotest.(check bool) "x*1" true (Ast.equal_expr (e "x * 1") (Ast.Var "x"));
  Alcotest.(check bool) "x*0" true (Ast.equal_expr (e "x * 0") (Ast.Const 0L));
  Alcotest.(check bool) "x-x" true (Ast.equal_expr (e "x - x") (Ast.Const 0L));
  Alcotest.(check bool) "x^x" true (Ast.equal_expr (e "x ^ x") (Ast.Const 0L));
  Alcotest.(check bool) "x|0" true (Ast.equal_expr (e "x | 0") (Ast.Var "x"));
  Alcotest.(check bool) "2+3*4" true (Ast.equal_expr (e "2 + 3 * 4") (Ast.Const 14L))

let test_fold_static_if () =
  let f =
    fold_of_src
      "int f(int* o) { int a; a = 1; if (a > 0) { *o = 10; } else { *o = 20; \
       } return 0; }"
  in
  (* The if should be gone: only the taken branch's statements remain. *)
  let has_if =
    List.exists (function Ast.Sif _ -> true | _ -> false) f.Ast.body
  in
  Alcotest.(check bool) "if eliminated" false has_if

let test_fold_division_by_zero_preserved () =
  (* 1/0 must not be folded away (runtime error preserved). *)
  let e = Const_fold.fold_expr (Ast.Binop (Ast.Div, Ast.Const 1L, Ast.Const 0L)) in
  match e with
  | Ast.Binop (Ast.Div, _, _) -> ()
  | _ -> Alcotest.fail "division by zero must not fold"

let test_dce_removes_dead () =
  let f =
    fold_of_src
      "int f(int x, int* o) { int dead; dead = x * 99; *o = x + 1; return 0; }"
  in
  (* the dead computation (x * 99) is gone; the declaration may remain *)
  let mentions_99 =
    let s = Pretty.func_to_string f in
    let re = Str.regexp_string "99" in
    (try ignore (Str.search_forward re s 0); true with Not_found -> false)
  in
  Alcotest.(check bool) "dead computation removed" false mentions_99;
  let assignments =
    List.length
      (List.filter (function Ast.Sassign _ -> true | _ -> false) f.Ast.body)
  in
  Alcotest.(check int) "only the live store remains" 1 assignments

let test_fold_preserves_semantics () =
  let src =
    "void f(int A[8], int C[8], int x) { int i; for (i = 0; i < 8; i++) { \
     C[i] = (A[i] * 1 + 0) * (2 + 3) + x * 0; } }"
  in
  let prog = parse src in
  let folded =
    { prog with
      Ast.funcs = List.map Const_fold.optimize_func prog.Ast.funcs }
  in
  let folded_src = Pretty.program_to_string folded in
  Alcotest.(check bool) "same behaviour" true
    (same_behaviour ~fname:"f"
       ~scalars:[ "x", 7L ]
       ~arrays:[ "A", Array.init 8 Int64.of_int ]
       src folded_src)

(* ------------------------------------------------------------------ *)
(* Loop transforms                                                     *)
(* ------------------------------------------------------------------ *)

let header init cond bound step =
  { Ast.index = "i"; init = Ast.const init; cond_op = cond;
    bound = Ast.const bound; step = Ast.const step }

let test_trip_counts_direct () =
  Alcotest.(check (option int)) "<17" (Some 17)
    (Loop_opt.trip_count (header 0 Ast.Lt 17 1));
  Alcotest.(check (option int)) "<=16" (Some 17)
    (Loop_opt.trip_count (header 0 Ast.Le 16 1));
  Alcotest.(check (option int)) "step 2" (Some 5)
    (Loop_opt.trip_count (header 0 Ast.Lt 10 2));
  Alcotest.(check (option int)) "countdown" (Some 4)
    (Loop_opt.trip_count (header 3 Ast.Ge 0 (-1)));
  Alcotest.(check (option int)) "empty" (Some 0)
    (Loop_opt.trip_count (header 5 Ast.Lt 5 1))

let test_full_unroll_semantics () =
  let src =
    "void f(int A[4], int C[4]) { int i; for (i=0;i<4;i++) { C[i] = A[i] * 2; \
     } }"
  in
  let prog = parse src in
  let f = List.hd prog.Ast.funcs in
  let body' = Loop_opt.unroll_small_loops ~max_trip:8 f.Ast.body in
  let unrolled = { prog with Ast.funcs = [ { f with Ast.body = body' } ] } in
  (* No loop remains. *)
  let has_loop =
    List.exists (function Ast.Sfor _ -> true | _ -> false) body'
  in
  Alcotest.(check bool) "loop gone" false has_loop;
  Alcotest.(check bool) "same behaviour" true
    (same_behaviour ~fname:"f" ~scalars:[]
       ~arrays:[ "A", [| 1L; 2L; 3L; 4L |] ]
       src
       (Pretty.program_to_string unrolled))

let test_partial_unroll () =
  let f = parse_fn
      "void f(int A[8], int C[8]) { int i; for (i=0;i<8;i++) { C[i] = A[i] + \
       1; } }"
  in
  match f.Ast.body with
  | [ Ast.Sdecl _; Ast.Sfor (h, body) ] ->
    let h', body' = Loop_opt.partially_unroll ~factor:4 h body in
    Alcotest.(check (option int)) "trip count 2" (Some 2)
      (Loop_opt.trip_count h');
    Alcotest.(check int) "body grew 4x" (4 * List.length body)
      (List.length body');
    (* behaviour preserved *)
    let prog = parse "void g() {}" in
    ignore prog;
    let f' = { f with Ast.body = [ Ast.Sdecl (Ast.Tint Ast.int32_kind, "i", None);
                                   Ast.Sfor (h', body') ] } in
    let p1 = { Ast.globals = []; funcs = [ f ]; pipelines = [] } in
    let p2 = { Ast.globals = []; funcs = [ f' ]; pipelines = [] } in
    Alcotest.(check bool) "same behaviour" true
      (same_behaviour ~fname:"f" ~scalars:[]
         ~arrays:[ "A", Array.init 8 Int64.of_int ]
         (Pretty.program_to_string p1)
         (Pretty.program_to_string p2))
  | _ -> Alcotest.fail "bad shape"

let test_partial_unroll_rejects_nondivisible () =
  let f = parse_fn
      "void f(int A[7]) { int i; for (i=0;i<7;i++) { A[i] = i; } }"
  in
  match f.Ast.body with
  | [ Ast.Sdecl _; Ast.Sfor (h, body) ] -> (
    match Loop_opt.partially_unroll ~factor:2 h body with
    | exception Loop_opt.Error _ -> ()
    | _ -> Alcotest.fail "expected error for non-divisible factor")
  | _ -> Alcotest.fail "bad shape"

let test_fusion () =
  let src =
    "void f(int A[8], int B[8], int C[8]) { int i; for (i=0;i<8;i++) { B[i] \
     = A[i] + 1; } for (i=0;i<8;i++) { C[i] = A[i] * 2; } }"
  in
  let f = List.hd (parse src).Ast.funcs in
  let fused = Loop_opt.fuse_loops f.Ast.body in
  let loops =
    List.filter (function Ast.Sfor _ -> true | _ -> false) fused
  in
  Alcotest.(check int) "one loop after fusion" 1 (List.length loops);
  let p2 = { Ast.globals = []; funcs = [ { f with Ast.body = fused } ]; pipelines = [] } in
  Alcotest.(check bool) "same behaviour" true
    (same_behaviour ~fname:"f" ~scalars:[]
       ~arrays:[ "A", Array.init 8 Int64.of_int ]
       src
       (Pretty.program_to_string p2))

let test_fusion_blocked_by_dependence () =
  (* Second loop reads what the first writes: must NOT fuse. *)
  let src =
    "void f(int A[8], int B[8], int C[8]) { int i; for (i=0;i<8;i++) { B[i] \
     = A[i] + 1; } for (i=0;i<8;i++) { C[i] = B[i] * 2; } }"
  in
  let f = List.hd (parse src).Ast.funcs in
  let fused = Loop_opt.fuse_loops f.Ast.body in
  let loops = List.filter (function Ast.Sfor _ -> true | _ -> false) fused in
  Alcotest.(check int) "still two loops" 2 (List.length loops)

let test_strip_mine () =
  let f = parse_fn
      "void f(int A[16], int C[16]) { int i; for (i=0;i<16;i++) { C[i] = \
       A[i] + 3; } }"
  in
  match f.Ast.body with
  | [ (Ast.Sdecl _ as d); Ast.Sfor (h, body) ] ->
    let stripped = Loop_opt.strip_mine ~width:4 h body in
    let f' = { f with Ast.body = [ d; stripped ] } in
    (* outer loop over strips of 4, inner unit loop *)
    (match stripped with
    | Ast.Sfor (ho, [ Ast.Sfor (hi, _) ]) ->
      Alcotest.(check (option int)) "outer trips" (Some 4)
        (Loop_opt.trip_count ho);
      Alcotest.(check string) "inner index" "i" hi.Ast.index
    | _ -> Alcotest.fail "strip-mine shape");
    let p1 = { Ast.globals = []; funcs = [ f ]; pipelines = [] } in
    let p2 = { Ast.globals = []; funcs = [ f' ]; pipelines = [] } in
    Alcotest.(check bool) "same behaviour" true
      (same_behaviour ~fname:"f" ~scalars:[]
         ~arrays:[ "A", Array.init 16 Int64.of_int ]
         (Pretty.program_to_string p1)
         (Pretty.program_to_string p2))
  | _ -> Alcotest.fail "bad shape"

(* ------------------------------------------------------------------ *)
(* Inlining                                                            *)
(* ------------------------------------------------------------------ *)

let test_inline_simple () =
  let src =
    "int square(int x) { return x * x; }\n\
     void f(int a, int* o) { *o = square(a) + square(a + 1); }"
  in
  let prog = parse src in
  let f = List.find (fun g -> g.Ast.fname = "f") prog.Ast.funcs in
  let f' = Inline.inline_calls prog f in
  (* No user calls remain. *)
  let calls =
    Ast.fold_stmts
      (fun acc _ -> acc)
      (fun acc e ->
        match e with
        | Ast.Call (g, _) when not (Ast.is_intrinsic g) -> g :: acc
        | _ -> acc)
      [] f'.Ast.body
  in
  Alcotest.(check (list string)) "no calls" [] calls;
  let p2 = { prog with Ast.funcs = [ f' ] } in
  Alcotest.(check bool) "same behaviour" true
    (same_behaviour ~fname:"f" ~scalars:[ "a", 5L ] ~arrays:[] src
       (Pretty.program_to_string p2))

let test_inline_nested () =
  let src =
    "int add1(int x) { return x + 1; }\n\
     int add2(int x) { return add1(add1(x)); }\n\
     void f(int a, int* o) { *o = add2(a); }"
  in
  let prog = parse src in
  let f = List.find (fun g -> g.Ast.fname = "f") prog.Ast.funcs in
  let f' = Inline.inline_calls prog f in
  let p2 = { prog with Ast.funcs = [ f' ] } in
  Alcotest.(check bool) "same behaviour" true
    (same_behaviour ~fname:"f" ~scalars:[ "a", 40L ] ~arrays:[] src
       (Pretty.program_to_string p2))

let test_inline_in_loop () =
  let src =
    "int clamp(int x) { int r; r = x; if (x > 100) { r = 100; } return r; }\n\
     void f(int A[8], int C[8]) { int i; for (i=0;i<8;i++) { C[i] = \
     clamp(A[i] * 30); } }"
  in
  let prog = parse src in
  let f = List.find (fun g -> g.Ast.fname = "f") prog.Ast.funcs in
  let f' = Inline.inline_calls prog f in
  let p2 = { prog with Ast.funcs = [ f' ] } in
  Alcotest.(check bool) "same behaviour" true
    (same_behaviour ~fname:"f" ~scalars:[]
       ~arrays:[ "A", Array.init 8 Int64.of_int ]
       src
       (Pretty.program_to_string p2))

(* ------------------------------------------------------------------ *)
(* Scalar replacement                                                  *)
(* ------------------------------------------------------------------ *)

let fir_source = Roccc_core.Kernels.paper_fir_source

let acc_source = Roccc_core.Kernels.paper_acc_source

let kernel_of src name =
  let prog = parse src in
  let _ = Semant.check_program prog in
  let f = List.find (fun g -> g.Ast.fname = name) prog.Ast.funcs in
  Scalar_replacement.run prog f

let test_sr_fir_window () =
  let k = kernel_of fir_source "fir" in
  (match k.Kernel.windows with
  | [ w ] ->
    Alcotest.(check string) "array" "A" w.Kernel.win_array;
    Alcotest.(check (list (list int))) "offsets"
      [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ]; [ 4 ] ]
      w.Kernel.win_offsets;
    Alcotest.(check (list int)) "extent" [ 5 ] (Kernel.window_extent w)
  | _ -> Alcotest.fail "expected one window");
  (match k.Kernel.loops with
  | [ d ] ->
    Alcotest.(check int) "trip count" 17 d.Kernel.count;
    Alcotest.(check int) "step" 1 d.Kernel.step
  | _ -> Alcotest.fail "one loop dim");
  (match k.Kernel.outputs with
  | [ { Kernel.target = Kernel.Out_array { arr = "C"; offset = [ 0 ]; _ }; _ } ]
    ->
    ()
  | _ -> Alcotest.fail "expected C[+0] output");
  Alcotest.(check int) "no feedback" 0 (List.length k.Kernel.feedback)

let test_sr_fir_dp_params () =
  let k = kernel_of fir_source "fir" in
  let names = List.map (fun p -> p.Ast.pname) k.Kernel.dp.Ast.params in
  Alcotest.(check (list string)) "paper-style names"
    [ "A0"; "A1"; "A2"; "A3"; "A4"; "Tmp0" ]
    names

let test_sr_fir_dp_behaviour () =
  (* The dp function computes one FIR tap: feed window values directly. *)
  let k = kernel_of fir_source "fir" in
  let dp_prog = { Ast.globals = []; funcs = [ k.Kernel.dp ]; pipelines = [] } in
  let src = Pretty.program_to_string dp_prog in
  let outcome =
    Interp.run_source src k.Kernel.dp.Ast.fname
      ~scalars:[ "A0", 1L; "A1", 2L; "A2", 3L; "A3", 4L; "A4", 5L ]
  in
  (* 3*1 + 5*2 + 7*3 + 9*4 - 5 = 3+10+21+36-5 = 65 *)
  Alcotest.(check int64) "one tap" 65L
    (List.assoc "Tmp0" outcome.Interp.pointer_outputs)

let test_sr_transformed_behaviour () =
  (* Figure 3b program behaves like Figure 3a program. *)
  let k = kernel_of fir_source "fir" in
  let p2 =
    { Ast.globals = []; funcs = [ { k.Kernel.transformed with Ast.fname = "fir" } ]; pipelines = [] }
  in
  Alcotest.(check bool) "same behaviour" true
    (same_behaviour ~fname:"fir" ~scalars:[]
       ~arrays:[ "A", Array.init 21 (fun i -> Int64.of_int ((i * 3) - 11)) ]
       fir_source
       (Pretty.program_to_string p2))

let test_sr_accumulator_feedback () =
  let k = kernel_of acc_source "acc" in
  (match k.Kernel.feedback with
  | [ fb ] ->
    Alcotest.(check string) "var" "sum" fb.Kernel.fb_name;
    Alcotest.(check int64) "init" 0L fb.Kernel.fb_init
  | _ -> Alcotest.fail "expected one feedback var");
  (* scalar output through pointer "out", fed by sum's last value *)
  match k.Kernel.outputs with
  | [ { Kernel.target = Kernel.Out_scalar { name = "out"; _ }; _ } ] -> ()
  | _ -> Alcotest.fail "expected scalar output"

let test_sr_rejects_nonaffine () =
  let src =
    "void f(int A[16], int B[16], int C[16]) { int i; for (i=0;i<16;i++) { \
     C[i] = A[B[i]]; } }"
  in
  match kernel_of src "f" with
  | exception Scalar_replacement.Error _ -> ()
  | _ -> Alcotest.fail "expected rejection of indirect access"

let test_sr_two_dim () =
  let src =
    "void f(int A[8][8], int C[6][6]) {\n\
    \  int i, j;\n\
    \  for (i = 0; i < 6; i++) {\n\
    \    for (j = 0; j < 6; j++) {\n\
    \      C[i][j] = A[i][j] + A[i][j+1] + A[i+1][j] + A[i+1][j+1];\n\
    \    }\n\
    \  }\n\
     }"
  in
  let k = kernel_of src "f" in
  (match k.Kernel.windows with
  | [ w ] ->
    Alcotest.(check (list (list int))) "2x2 window"
      [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ]
      w.Kernel.win_offsets;
    Alcotest.(check (list int)) "extent" [ 2; 2 ] (Kernel.window_extent w)
  | _ -> Alcotest.fail "expected one 2-D window");
  Alcotest.(check int) "two loop dims" 2 (List.length k.Kernel.loops)

let test_sr_pure_kernel () =
  let src = "void g(int x1, int x2, int* y) { *y = x1 * x2 + 1; }" in
  let k = kernel_of src "g" in
  Alcotest.(check int) "no loops" 0 (List.length k.Kernel.loops);
  Alcotest.(check int) "no windows" 0 (List.length k.Kernel.windows);
  Alcotest.(check int) "two scalar ins" 2 (List.length k.Kernel.scalar_inputs);
  match k.Kernel.outputs with
  | [ { Kernel.port = "y"; _ } ] -> ()
  | _ -> Alcotest.fail "expected output y"

(* ------------------------------------------------------------------ *)
(* Feedback annotation                                                 *)
(* ------------------------------------------------------------------ *)

let test_feedback_annotation () =
  let k = kernel_of acc_source "acc" in
  let k = Feedback.annotate k in
  Feedback.validate k;
  let body_src = Pretty.stmts_to_string k.Kernel.dp.Ast.body in
  let contains needle hay =
    let re = Str.regexp_string needle in
    try ignore (Str.search_forward re hay 0); true with Not_found -> false
  in
  Alcotest.(check bool) "has load_prev" true
    (contains "ROCCC_load_prev(sum)" body_src);
  Alcotest.(check bool) "has store2next" true
    (contains "ROCCC_store2next(sum" body_src)

let test_feedback_dp_behaviour () =
  (* Iterating the annotated dp function accumulates like the original. *)
  let k = Feedback.annotate (kernel_of acc_source "acc") in
  let dp_prog =
    { Ast.globals =
        List.map
          (fun fb ->
            { Ast.gtype = Ast.Tint fb.Kernel.fb_kind;
              gname = fb.Kernel.fb_name;
              ginit = Some (Ast.Const fb.Kernel.fb_init) })
          k.Kernel.feedback;
      funcs = [ k.Kernel.dp ];
      pipelines = [] }
  in
  let rt = Interp.create dp_prog in
  (* run 32 iterations manually, threading the feedback global *)
  Interp.init_globals rt;
  let total = ref 0L in
  (* init_globals is called inside run; emulate iteration by using one run
     per element and re-setting sum between runs would reset it. Instead,
     evaluate semantics: sum_i = sum_{i-1} + A0. *)
  ignore rt;
  let expected = ref 0L in
  for i = 0 to 31 do
    expected := Int64.add !expected (Int64.of_int i);
    total := !expected
  done;
  (* A paper-faithful sequential model of the dp pipeline lives in the hw
     simulator; here we only check the single-iteration contract: *)
  let one =
    Interp.run_source
      (Pretty.program_to_string dp_prog)
      k.Kernel.dp.Ast.fname
      ~scalars:[ "A0", 5L ]
  in
  Alcotest.(check int64) "one iteration: 0 + 5" 5L
    (List.assoc "Tmp0" one.Interp.pointer_outputs)

let test_feedback_if_branch () =
  (* mul_acc-style: conditional accumulation detects feedback too. *)
  let src =
    "int acc = 0;\n\
     void mul_acc(int A[16], int B[16], int ND[16], int* out) {\n\
    \  int i;\n\
    \  for (i = 0; i < 16; i++) {\n\
    \    if (ND[i]) { acc = acc + A[i] * B[i]; }\n\
    \  }\n\
    \  *out = acc;\n\
     }"
  in
  let k = kernel_of src "mul_acc" in
  (match k.Kernel.feedback with
  | [ fb ] -> Alcotest.(check string) "acc" "acc" fb.Kernel.fb_name
  | _ -> Alcotest.fail "expected feedback acc");
  let k = Feedback.annotate k in
  Feedback.validate k

(* ------------------------------------------------------------------ *)
(* LUT conversion                                                      *)
(* ------------------------------------------------------------------ *)

let test_lut_cos_table () =
  let t = Lut_conv.cos_table ~in_bits:10 ~out_bits:16 () in
  Alcotest.(check int) "1024 entries" 1024 (Lut_conv.size t);
  Alcotest.(check int64) "cos(0) = max" 32767L t.Lut_conv.contents.(0);
  (* cos(pi) = -max at x = 512 *)
  Alcotest.(check int64) "cos(pi)" (-32767L) t.Lut_conv.contents.(512);
  (* quarter wave is ~0 *)
  let q = Int64.to_int t.Lut_conv.contents.(256) in
  Alcotest.(check bool) "cos(pi/2) ~ 0" true (abs q <= 1)

let test_lut_from_function () =
  let prog = parse "int triple(uint8 x) { return x * 3; }" in
  let t = Lut_conv.from_function prog (List.hd prog.Ast.funcs) in
  Alcotest.(check int) "256 entries" 256 (Lut_conv.size t);
  Alcotest.(check int64) "t(7)" 21L (Lut_conv.lookup t 7L);
  Alcotest.(check int64) "t(255)" 765L (Lut_conv.lookup t 255L)

let test_lut_from_function_signed () =
  let prog = parse "int absv(int4 x) { int r; r = x; if (x < 0) { r = -x; } return r; }" in
  let t = Lut_conv.from_function prog (List.hd prog.Ast.funcs) in
  Alcotest.(check int) "16 entries" 16 (Lut_conv.size t);
  (* address 15 encodes -1 for a signed 4-bit input *)
  Alcotest.(check int64) "abs(-1)" 1L t.Lut_conv.contents.(15);
  Alcotest.(check int64) "abs(7)" 7L t.Lut_conv.contents.(7)

let test_lut_rejects_impure () =
  let prog =
    parse "int g = 1; int bad(uint8 x) { return x + g; }"
  in
  (* reads a global: still pure in our sense? The global is constant-init;
     we conservatively reject array/pointer access only, so this passes.
     A truly impure case is a pointer write: *)
  ignore prog;
  let prog2 = parse "int bad2(uint20 x) { return x; }" in
  (match Lut_conv.from_function prog2 (List.hd prog2.Ast.funcs) with
  | exception Lut_conv.Error _ -> ()
  | _ -> Alcotest.fail "20-bit input must be rejected")

let test_lut_init_roundtrip () =
  let t =
    Lut_conv.of_contents ~name:"t"
      ~in_kind:(Ast.make_ikind ~signed:false 4)
      ~out_kind:(Ast.make_ikind ~signed:true 8)
      (Array.init 16 (fun i -> Int64.of_int ((i * 5) - 40)))
  in
  let text = Lut_conv.to_init_text t in
  let t2 =
    Lut_conv.of_init_text ~name:"t"
      ~in_kind:(Ast.make_ikind ~signed:false 4)
      ~out_kind:(Ast.make_ikind ~signed:true 8)
      text
  in
  Alcotest.(check bool) "contents equal" true (t.Lut_conv.contents = t2.Lut_conv.contents)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let qcheck_case = QCheck_alcotest.to_alcotest

let prop_fold_preserves_eval =
  (* Folding a random expression never changes its value. *)
  let gen_expr =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [ map (fun i -> Ast.Const (Int64.of_int i)) (int_range (-50) 50);
              map (fun c -> Ast.Var (Printf.sprintf "v%c" c))
                (char_range 'a' 'c') ]
        else
          let sub = self (n / 2) in
          oneof
            [ map2 (fun a b -> Ast.Binop (Ast.Add, a, b)) sub sub;
              map2 (fun a b -> Ast.Binop (Ast.Sub, a, b)) sub sub;
              map2 (fun a b -> Ast.Binop (Ast.Mul, a, b)) sub sub;
              map2 (fun a b -> Ast.Binop (Ast.Band, a, b)) sub sub;
              map2 (fun a b -> Ast.Binop (Ast.Bor, a, b)) sub sub;
              map (fun a -> Ast.Unop (Ast.Neg, a)) sub ]))
  in
  QCheck.Test.make ~count:300 ~name:"constant folding preserves evaluation"
    (QCheck.make gen_expr ~print:Pretty.expr_to_string)
    (fun e ->
      let folded = Const_fold.fold_expr e in
      let eval expr =
        let src =
          Printf.sprintf "void f(int va, int vb, int vc, int* o) { *o = %s; }"
            (Pretty.expr_to_string expr)
        in
        let outcome =
          Interp.run_source src "f" ~scalars:[ "va", 3L; "vb", -7L; "vc", 11L ]
        in
        List.assoc "o" outcome.Interp.pointer_outputs
      in
      Int64.equal (eval e) (eval folded))

let prop_unroll_preserves_sum =
  QCheck.Test.make ~count:50 ~name:"full unroll preserves array map semantics"
    QCheck.(pair (int_range 1 8) (array_of_size (Gen.return 8) (int_range (-100) 100)))
    (fun (n, data) ->
      let src =
        Printf.sprintf
          "void f(int A[8], int C[8]) { int i; for (i=0;i<%d;i++) { C[i] = \
           A[i] * 2 + 1; } }"
          n
      in
      let prog = parse src in
      let f = List.hd prog.Ast.funcs in
      let body' = Loop_opt.unroll_small_loops ~max_trip:8 f.Ast.body in
      let p2 = { prog with Ast.funcs = [ { f with Ast.body = body' } ] } in
      same_behaviour ~fname:"f" ~scalars:[]
        ~arrays:[ "A", Array.map Int64.of_int data ]
        src
        (Pretty.program_to_string p2))

let prop_sr_dp_matches_direct =
  (* For random FIR-like coefficient sets, dp(window) = direct formula. *)
  QCheck.Test.make ~count:50 ~name:"scalar-replaced dp computes the tap"
    QCheck.(pair
              (list_of_size (Gen.return 5) (int_range (-9) 9))
              (list_of_size (Gen.return 5) (int_range (-100) 100)))
    (fun (coeffs, window) ->
      let terms =
        List.mapi (fun i c -> Printf.sprintf "%d*A[i+%d]" c i) coeffs
      in
      let src =
        Printf.sprintf
          "void k(int A[12], int C[8]) { int i; for (i=0;i<8;i++) { C[i] = \
           %s; } }"
          (String.concat " + " terms)
      in
      let k = kernel_of src "k" in
      let dp_prog = { Ast.globals = []; funcs = [ k.Kernel.dp ]; pipelines = [] } in
      let scalars =
        List.mapi (fun i v -> Printf.sprintf "A%d" i, Int64.of_int v) window
      in
      let outcome =
        Interp.run_source (Pretty.program_to_string dp_prog)
          k.Kernel.dp.Ast.fname ~scalars
      in
      let got = List.assoc "Tmp0" outcome.Interp.pointer_outputs in
      let want =
        List.fold_left2
          (fun acc c v -> acc + (c * v))
          0 coeffs window
      in
      Int64.equal got (Int64.of_int want))

(* ------------------------------------------------------------------ *)

let suites =
  [ "hir.const_fold",
    [ Alcotest.test_case "folds constants" `Quick test_fold_constants;
      Alcotest.test_case "algebraic identities" `Quick test_fold_identities;
      Alcotest.test_case "static if elimination" `Quick test_fold_static_if;
      Alcotest.test_case "division by zero preserved" `Quick
        test_fold_division_by_zero_preserved;
      Alcotest.test_case "DCE removes dead code" `Quick test_dce_removes_dead;
      Alcotest.test_case "semantics preserved" `Quick
        test_fold_preserves_semantics ];
    "hir.loops",
    [ Alcotest.test_case "trip counts" `Quick test_trip_counts_direct;
      Alcotest.test_case "full unroll" `Quick test_full_unroll_semantics;
      Alcotest.test_case "partial unroll" `Quick test_partial_unroll;
      Alcotest.test_case "partial unroll divisibility" `Quick
        test_partial_unroll_rejects_nondivisible;
      Alcotest.test_case "fusion" `Quick test_fusion;
      Alcotest.test_case "fusion dependence check" `Quick
        test_fusion_blocked_by_dependence;
      Alcotest.test_case "strip-mining" `Quick test_strip_mine ];
    "hir.inline",
    [ Alcotest.test_case "simple call" `Quick test_inline_simple;
      Alcotest.test_case "nested calls" `Quick test_inline_nested;
      Alcotest.test_case "call in loop with branch" `Quick test_inline_in_loop ];
    "hir.scalar_replacement",
    [ Alcotest.test_case "FIR window" `Quick test_sr_fir_window;
      Alcotest.test_case "FIR dp parameters (Figure 3c)" `Quick
        test_sr_fir_dp_params;
      Alcotest.test_case "FIR dp behaviour" `Quick test_sr_fir_dp_behaviour;
      Alcotest.test_case "transformed = original (Figure 3b)" `Quick
        test_sr_transformed_behaviour;
      Alcotest.test_case "accumulator feedback" `Quick
        test_sr_accumulator_feedback;
      Alcotest.test_case "rejects non-affine access" `Quick
        test_sr_rejects_nonaffine;
      Alcotest.test_case "2-D window" `Quick test_sr_two_dim;
      Alcotest.test_case "pure combinational kernel" `Quick
        test_sr_pure_kernel ];
    "hir.feedback",
    [ Alcotest.test_case "LPR/SNX annotation (Figure 4c)" `Quick
        test_feedback_annotation;
      Alcotest.test_case "dp single-iteration contract" `Quick
        test_feedback_dp_behaviour;
      Alcotest.test_case "conditional accumulation" `Quick
        test_feedback_if_branch ];
    "hir.lut",
    [ Alcotest.test_case "cos table" `Quick test_lut_cos_table;
      Alcotest.test_case "function to table" `Quick test_lut_from_function;
      Alcotest.test_case "signed input addressing" `Quick
        test_lut_from_function_signed;
      Alcotest.test_case "width limit" `Quick test_lut_rejects_impure;
      Alcotest.test_case "init file round-trip" `Quick test_lut_init_roundtrip ];
    "hir.properties",
    [ qcheck_case prop_fold_preserves_eval;
      qcheck_case prop_unroll_preserves_sum;
      qcheck_case prop_sr_dp_matches_direct ] ]
