(* Tests for the VM IR, lowering, CFG, dataflow and SSA libraries. *)

open Roccc_cfront
open Roccc_hir
open Roccc_vm
open Roccc_analysis

let kernel_of src name =
  let prog = Parser.parse_program src in
  let _ = Semant.check_program prog in
  let f = List.find (fun g -> g.Ast.fname = name) prog.Ast.funcs in
  Feedback.annotate (Scalar_replacement.run prog f)

let fir_source = Roccc_core.Kernels.paper_fir_source

let acc_source = Roccc_core.Kernels.paper_acc_source

let if_else_source = Roccc_core.Kernels.paper_if_else_source

let lower src name = Lower.lower_kernel (kernel_of src name)

(* ------------------------------------------------------------------ *)
(* Lowering + evaluation                                               *)
(* ------------------------------------------------------------------ *)

let test_lower_fir_eval () =
  let proc = lower fir_source "fir" in
  let r =
    Eval.run proc
      ~inputs:[ "A0", 1L; "A1", 2L; "A2", 3L; "A3", 4L; "A4", 5L ]
  in
  Alcotest.(check int64) "tap value" 65L (List.assoc "Tmp0" r.Eval.outputs)

let test_lower_if_else_eval () =
  let proc = lower if_else_source "if_else" in
  let reference x1 x2 =
    let c = x1 - x2 in
    let a = if c < x2 then x1 * x1 else (x1 * x2) + 3 in
    Int64.of_int (c - a), Int64.of_int a
  in
  List.iter
    (fun (x1, x2) ->
      let r =
        Eval.run proc
          ~inputs:[ "x1", Int64.of_int x1; "x2", Int64.of_int x2 ]
      in
      let want3, want4 = reference x1 x2 in
      Alcotest.(check int64)
        (Printf.sprintf "x3 at (%d,%d)" x1 x2)
        want3
        (List.assoc "x3" r.Eval.outputs);
      Alcotest.(check int64)
        (Printf.sprintf "x4 at (%d,%d)" x1 x2)
        want4
        (List.assoc "x4" r.Eval.outputs))
    [ 0, 0; 5, 3; 3, 5; -4, 10; 100, -100 ]

let test_lower_accumulator_stream () =
  (* Streaming the accumulator dp over 32 inputs reproduces the sum. *)
  let proc = lower acc_source "acc" in
  let stream = List.init 32 (fun i -> [ "A0", Int64.of_int i ]) in
  let results = Eval.run_stream proc stream in
  let last = List.nth results 31 in
  Alcotest.(check int64) "final sum" 496L (List.assoc "Tmp0" last.Eval.outputs);
  (* feedback value advances every iteration *)
  let fb_after_3 = List.nth results 2 in
  Alcotest.(check int64) "sum after 3 items (0+1+2)" 3L
    (List.assoc "sum" fb_after_3.Eval.feedback_next)

let test_lower_lut () =
  let luts_sig =
    [ "cos",
      { Semant.lut_in = Ast.make_ikind ~signed:false 10;
        lut_out = Ast.make_ikind ~signed:true 16 } ]
  in
  let src = "void f(uint10 x, int16* y) { *y = cos(x); }" in
  let prog = Parser.parse_program src in
  let _ = Semant.check_program ~luts:luts_sig prog in
  let f = List.hd prog.Ast.funcs in
  let k = Scalar_replacement.run prog f in
  let proc = Lower.lower_kernel ~luts:luts_sig k in
  let table = Lut_conv.cos_table ~in_bits:10 ~out_bits:16 () in
  let r =
    Eval.run proc
      ~luts:[ "cos", Lut_conv.lookup table ]
      ~inputs:[ "x", 0L ]
  in
  Alcotest.(check int64) "cos(0)" 32767L (List.assoc "y" r.Eval.outputs)

let test_instr_arity_checked () =
  match Instr.make ~dst:0 Instr.Add [ 1 ] Ast.int32_kind with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected arity check failure"

let test_eval_rejects_missing_input () =
  let proc = lower fir_source "fir" in
  match Eval.run proc ~inputs:[ "A0", 1L ] with
  | exception Eval.Error _ -> ()
  | _ -> Alcotest.fail "expected missing-input error"

(* ------------------------------------------------------------------ *)
(* CFG                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cfg_if_else_shape () =
  let proc = lower if_else_source "if_else" in
  let g = Cfg.build proc in
  (* entry, then, else, join = 4 blocks *)
  Alcotest.(check int) "4 blocks" 4 (Array.length g.Cfg.rpo);
  let entry = Cfg.entry_label g in
  Alcotest.(check int) "entry has 2 successors" 2
    (List.length (Cfg.successors g entry));
  (* join block: 2 predecessors, dominated by entry *)
  let join =
    Array.to_list g.Cfg.rpo
    |> List.find (fun l -> List.length (Cfg.predecessors g l) = 2)
  in
  Alcotest.(check bool) "entry dominates join" true (Cfg.dominates g entry join);
  Alcotest.(check (option int)) "join's idom is entry" (Some entry)
    (Cfg.immediate_dominator g join)

let test_cfg_dominance_frontier () =
  let proc = lower if_else_source "if_else" in
  let g = Cfg.build proc in
  let df = Cfg.dominance_frontiers g in
  let entry = Cfg.entry_label g in
  let join =
    Array.to_list g.Cfg.rpo
    |> List.find (fun l -> List.length (Cfg.predecessors g l) = 2)
  in
  let branches =
    Array.to_list g.Cfg.rpo
    |> List.filter (fun l -> l <> entry && l <> join)
  in
  List.iter
    (fun b ->
      Alcotest.(check (list int))
        (Printf.sprintf "DF of branch L%d is the join" b)
        [ join ]
        (Option.value (Hashtbl.find_opt df b) ~default:[]))
    branches;
  Alcotest.(check (list int)) "DF of entry empty" []
    (Option.value (Hashtbl.find_opt df entry) ~default:[])

let test_cfg_straightline () =
  let proc = lower fir_source "fir" in
  let g = Cfg.build proc in
  Alcotest.(check int) "single block" 1 (Array.length g.Cfg.rpo);
  Alcotest.(check (list int)) "no successors" []
    (Cfg.successors g (Cfg.entry_label g))

(* ------------------------------------------------------------------ *)
(* Dataflow                                                            *)
(* ------------------------------------------------------------------ *)

let test_liveness_outputs_live () =
  let proc = lower if_else_source "if_else" in
  let g = Cfg.build proc in
  let sol = Dataflow.liveness g in
  (* The exit block's live-out contains the output port registers. *)
  let exit_l =
    List.find (fun (b : Proc.block) -> b.Proc.term = Proc.Ret) proc.Proc.blocks
  in
  let live_exit = Dataflow.out_of sol exit_l.Proc.label in
  List.iter
    (fun (p : Proc.port) ->
      Alcotest.(check bool)
        (Printf.sprintf "output %s live at exit" p.Proc.port_name)
        true
        (Dataflow.IS.mem p.Proc.port_reg live_exit))
    proc.Proc.outputs

let test_liveness_inputs_live_at_entry () =
  let proc = lower if_else_source "if_else" in
  let g = Cfg.build proc in
  let sol = Dataflow.liveness g in
  let live_in_entry = Dataflow.in_of sol (Cfg.entry_label g) in
  List.iter
    (fun (p : Proc.port) ->
      Alcotest.(check bool)
        (Printf.sprintf "input %s live at entry" p.Proc.port_name)
        true
        (Dataflow.IS.mem p.Proc.port_reg live_in_entry))
    proc.Proc.inputs

let test_reaching_definitions () =
  let proc = lower if_else_source "if_else" in
  let g = Cfg.build proc in
  let sol, sites = Dataflow.reaching_definitions g in
  (* Both branch definitions of 'a' reach the join block. *)
  let join =
    List.find
      (fun (b : Proc.block) -> List.length (Cfg.predecessors g b.Proc.label) = 2)
      proc.Proc.blocks
  in
  let reach_in = Dataflow.in_of sol join.Proc.label in
  Alcotest.(check bool) "definitions reach the join" true
    (Dataflow.IS.cardinal reach_in > 0);
  Alcotest.(check bool) "site list non-empty" true (List.length sites > 0)

let test_available_expressions () =
  let proc = lower fir_source "fir" in
  let g = Cfg.build proc in
  let _sol, numbering = Dataflow.available_expressions g in
  (* FIR has 4 multiplies, 3 adds, 1 sub: at least 8 distinct expressions. *)
  Alcotest.(check bool) "expressions numbered" true
    (Hashtbl.length numbering >= 8)

(* ------------------------------------------------------------------ *)
(* SSA                                                                 *)
(* ------------------------------------------------------------------ *)

let test_ssa_single_assignment () =
  let proc = lower if_else_source "if_else" in
  let _g = Ssa.convert proc in
  Ssa.verify proc

let test_ssa_phi_at_join () =
  let proc = lower if_else_source "if_else" in
  let _g = Ssa.convert proc in
  let join =
    List.find
      (fun (b : Proc.block) -> b.Proc.phis <> [])
      proc.Proc.blocks
  in
  (* 'a' is assigned in both branches: exactly the merge the paper's mux
     node 7 materializes. At least one phi with two args. *)
  List.iter
    (fun (phi : Proc.phi) ->
      Alcotest.(check int)
        (Printf.sprintf "phi v%d has 2 args" phi.Proc.phi_dst)
        2
        (List.length phi.Proc.phi_args))
    join.Proc.phis;
  Alcotest.(check bool) "has phis" true (List.length join.Proc.phis >= 1)

let test_ssa_preserves_semantics () =
  let proc = lower if_else_source "if_else" in
  let before =
    List.map
      (fun (x1, x2) ->
        Eval.run proc ~inputs:[ "x1", Int64.of_int x1; "x2", Int64.of_int x2 ])
      [ 0, 0; 5, 3; 3, 5; -4, 10; 100, -100; 7, 7 ]
  in
  let _g = Ssa.convert proc in
  Ssa.verify proc;
  let after =
    List.map
      (fun (x1, x2) ->
        Eval.run proc ~inputs:[ "x1", Int64.of_int x1; "x2", Int64.of_int x2 ])
      [ 0, 0; 5, 3; 3, 5; -4, 10; 100, -100; 7, 7 ]
  in
  List.iter2
    (fun (b : Eval.result) (a : Eval.result) ->
      Alcotest.(check bool) "same outputs" true (b.Eval.outputs = a.Eval.outputs))
    before after

let test_ssa_straightline_noop_phis () =
  let proc = lower fir_source "fir" in
  let _g = Ssa.convert proc in
  Ssa.verify proc;
  List.iter
    (fun (b : Proc.block) ->
      Alcotest.(check int) "no phis in straight-line code" 0
        (List.length b.Proc.phis))
    proc.Proc.blocks

let test_ssa_accumulator_stream_preserved () =
  let proc = lower acc_source "acc" in
  let _g = Ssa.convert proc in
  Ssa.verify proc;
  let stream = List.init 32 (fun i -> [ "A0", Int64.of_int i ]) in
  let results = Eval.run_stream proc stream in
  let last = List.nth results 31 in
  Alcotest.(check int64) "final sum preserved" 496L
    (List.assoc "Tmp0" last.Eval.outputs)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let qcheck_case = QCheck_alcotest.to_alcotest

let prop_lower_matches_interp =
  (* Random if_else-style kernels: VM evaluation = C interpretation. *)
  QCheck.Test.make ~count:100
    ~name:"lowered VM procedure matches the C interpreter"
    QCheck.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))
    (fun (x1, x2) ->
      let proc = lower if_else_source "if_else" in
      let r =
        Eval.run proc ~inputs:[ "x1", Int64.of_int x1; "x2", Int64.of_int x2 ]
      in
      let o =
        Interp.run_source if_else_source "if_else"
          ~scalars:[ "x1", Int64.of_int x1; "x2", Int64.of_int x2 ]
      in
      List.assoc "x3" r.Eval.outputs
      = List.assoc "x3" o.Interp.pointer_outputs
      && List.assoc "x4" r.Eval.outputs
         = List.assoc "x4" o.Interp.pointer_outputs)

let prop_ssa_preserves_eval =
  QCheck.Test.make ~count:60 ~name:"SSA conversion preserves evaluation"
    QCheck.(pair (int_range (-500) 500) (int_range (-500) 500))
    (fun (x1, x2) ->
      let proc = lower if_else_source "if_else" in
      let inputs = [ "x1", Int64.of_int x1; "x2", Int64.of_int x2 ] in
      let before = Eval.run proc ~inputs in
      let _ = Ssa.convert proc in
      let after = Eval.run proc ~inputs in
      before.Eval.outputs = after.Eval.outputs)

(* ------------------------------------------------------------------ *)

let suites =
  [ "vm.lower",
    [ Alcotest.test_case "FIR tap" `Quick test_lower_fir_eval;
      Alcotest.test_case "if_else branches" `Quick test_lower_if_else_eval;
      Alcotest.test_case "accumulator stream (LPR/SNX)" `Quick
        test_lower_accumulator_stream;
      Alcotest.test_case "lookup table" `Quick test_lower_lut;
      Alcotest.test_case "instruction arity checked" `Quick
        test_instr_arity_checked;
      Alcotest.test_case "missing input rejected" `Quick
        test_eval_rejects_missing_input ];
    "analysis.cfg",
    [ Alcotest.test_case "if/else diamond" `Quick test_cfg_if_else_shape;
      Alcotest.test_case "dominance frontiers" `Quick
        test_cfg_dominance_frontier;
      Alcotest.test_case "straight-line" `Quick test_cfg_straightline ];
    "analysis.dataflow",
    [ Alcotest.test_case "outputs live at exit" `Quick
        test_liveness_outputs_live;
      Alcotest.test_case "inputs live at entry" `Quick
        test_liveness_inputs_live_at_entry;
      Alcotest.test_case "reaching definitions" `Quick
        test_reaching_definitions;
      Alcotest.test_case "available expressions" `Quick
        test_available_expressions ];
    "analysis.ssa",
    [ Alcotest.test_case "single-assignment invariant" `Quick
        test_ssa_single_assignment;
      Alcotest.test_case "phi at the join (mux source)" `Quick
        test_ssa_phi_at_join;
      Alcotest.test_case "semantics preserved" `Quick
        test_ssa_preserves_semantics;
      Alcotest.test_case "no phis in straight-line code" `Quick
        test_ssa_straightline_noop_phis;
      Alcotest.test_case "accumulator stream preserved" `Quick
        test_ssa_accumulator_stream_preserved ];
    "vm.properties",
    [ qcheck_case prop_lower_matches_interp;
      qcheck_case prop_ssa_preserves_eval ] ]
