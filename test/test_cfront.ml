(* Tests for the C front-end: lexer, parser, semantic checks, interpreter. *)

open Roccc_cfront

let fir_source = Roccc_core.Kernels.paper_fir_source

let accumulator_source = Roccc_core.Kernels.paper_acc_source

let if_else_source = Roccc_core.Kernels.paper_if_else_source

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let test_lex_simple () =
  let toks = Lexer.tokenize "int x = 42;" in
  let kinds = List.map (fun t -> t.Lexer.tok) toks in
  Alcotest.(check int) "token count" 6 (List.length kinds);
  match kinds with
  | [ Lexer.KW_INT; Lexer.IDENT "x"; Lexer.ASSIGN; Lexer.INT_LIT 42L;
      Lexer.SEMI; Lexer.EOF ] ->
    ()
  | _ -> Alcotest.fail "unexpected token sequence"

let test_lex_operators () =
  let toks = Lexer.tokenize "<< >> <= >= == != && || ++ -- += -=" in
  let kinds = List.map (fun t -> t.Lexer.tok) toks in
  Alcotest.(check bool) "ops" true
    (kinds
    = [ Lexer.SHL; Lexer.SHR; Lexer.LE; Lexer.GE; Lexer.EQEQ; Lexer.NE;
        Lexer.ANDAND; Lexer.OROR; Lexer.PLUSPLUS; Lexer.MINUSMINUS;
        Lexer.PLUS_ASSIGN; Lexer.MINUS_ASSIGN; Lexer.EOF ])

let test_lex_comments () =
  let toks = Lexer.tokenize "a /* block\ncomment */ b // line\nc" in
  let idents =
    List.filter_map
      (fun t -> match t.Lexer.tok with Lexer.IDENT s -> Some s | _ -> None)
      toks
  in
  Alcotest.(check (list string)) "idents" [ "a"; "b"; "c" ] idents

let test_lex_hex () =
  let toks = Lexer.tokenize "0xff 0x10 255u 42L" in
  let lits =
    List.filter_map
      (fun t -> match t.Lexer.tok with Lexer.INT_LIT v -> Some v | _ -> None)
      toks
  in
  Alcotest.(check (list int64)) "literals" [ 255L; 16L; 255L; 42L ] lits

let test_lex_error_position () =
  match Lexer.tokenize "int x;\n  @" with
  | exception Lexer.Error (_, line, col) ->
    Alcotest.(check int) "line" 2 line;
    Alcotest.(check int) "col" 3 col
  | _ -> Alcotest.fail "expected a lexer error"

let test_lex_unterminated_comment () =
  match Lexer.tokenize "a /* never closed" with
  | exception Lexer.Error (msg, _, _) ->
    Alcotest.(check bool) "message" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "expected a lexer error"

(* An over-wide literal used to crash tokenize with an assert failure;
   it must be a positioned Lexer.Error pointing at the literal. *)
let test_lex_integer_overflow () =
  let expect_error ~line ~col src =
    match Lexer.tokenize src with
    | exception Lexer.Error (msg, l, c) ->
      Alcotest.(check bool)
        ("out-of-range message: " ^ msg)
        true
        (String.length msg > 0);
      Alcotest.(check int) "line" line l;
      Alcotest.(check int) "col" col c
    | _ -> Alcotest.fail ("expected a lexer error for " ^ src)
  in
  (* 2^64 in decimal, and a 17-nibble hex literal: both one bit too wide *)
  expect_error ~line:1 ~col:9 "int x = 18446744073709551616;";
  expect_error ~line:2 ~col:9 "int y;\nint z = 0x10000000000000000;";
  expect_error ~line:1 ~col:9 "int w = 99999999999999999999999999;";
  (* the extremes that still fit must keep lexing *)
  match Lexer.tokenize "a = 0xFFFFFFFFFFFFFFFF; b = 9223372036854775807;" with
  | toks ->
    let lits =
      List.filter_map
        (fun t -> match t.Lexer.tok with Lexer.INT_LIT v -> Some v | _ -> None)
        toks
    in
    Alcotest.(check (list int64)) "boundary literals" [ -1L; Int64.max_int ]
      lits
  | exception Lexer.Error (msg, _, _) ->
    Alcotest.fail ("boundary literal rejected: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_fir () =
  let prog = Parser.parse_program fir_source in
  Alcotest.(check int) "one function" 1 (List.length prog.Ast.funcs);
  let f = List.hd prog.Ast.funcs in
  Alcotest.(check string) "name" "fir" f.Ast.fname;
  Alcotest.(check int) "params" 2 (List.length f.Ast.params);
  match f.Ast.body with
  | [ Ast.Sdecl _; Ast.Sfor (h, body) ] ->
    Alcotest.(check string) "index" "i" h.Ast.index;
    Alcotest.(check bool) "bound is 17" true
      (Ast.equal_expr h.Ast.bound (Ast.const 17));
    Alcotest.(check int) "loop body" 1 (List.length body)
  | _ -> Alcotest.fail "unexpected FIR body shape"

let test_parse_precedence () =
  let f = Parser.parse_func "int f(int a, int b) { return a + b * 2; }" in
  match f.Ast.body with
  | [ Ast.Sreturn (Some (Ast.Binop (Ast.Add, Ast.Var "a",
        Ast.Binop (Ast.Mul, Ast.Var "b", Ast.Const 2L)))) ] ->
    ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parse_parens_override () =
  let f = Parser.parse_func "int f(int a, int b) { return (a + b) * 2; }" in
  match f.Ast.body with
  | [ Ast.Sreturn (Some (Ast.Binop (Ast.Mul, Ast.Binop (Ast.Add, _, _), _))) ]
    ->
    ()
  | _ -> Alcotest.fail "parentheses not honored"

let test_parse_if_else () =
  let prog = Parser.parse_program if_else_source in
  let f = List.hd prog.Ast.funcs in
  let has_if =
    List.exists (function Ast.Sif _ -> true | _ -> false) f.Ast.body
  in
  Alcotest.(check bool) "has if" true has_if;
  (* pointer outputs parsed as Tptr *)
  let ptr_params =
    List.filter
      (fun p -> match p.Ast.ptype with Ast.Tptr _ -> true | _ -> false)
      f.Ast.params
  in
  Alcotest.(check int) "two pointer outputs" 2 (List.length ptr_params)

let test_parse_two_dim_array () =
  let f = Parser.parse_func
      "void t(int A[4][8]) { A[1][2] = A[0][0] + 1; }"
  in
  (match (List.hd f.Ast.params).Ast.ptype with
  | Ast.Tarray (_, [ 4; 8 ]) -> ()
  | _ -> Alcotest.fail "2-D array type");
  match f.Ast.body with
  | [ Ast.Sassign (Ast.Lindex ("A", [ _; _ ]), _) ] -> ()
  | _ -> Alcotest.fail "2-D assignment shape"

let test_parse_sized_ints () =
  let f = Parser.parse_func "uint12 m(int8 a, uint19 b) { return b; }" in
  (match f.Ast.ret with
  | Ast.Tint { Ast.signed = false; bits = 12 } -> ()
  | _ -> Alcotest.fail "uint12 return");
  match List.map (fun p -> p.Ast.ptype) f.Ast.params with
  | [ Ast.Tint { Ast.signed = true; bits = 8 };
      Ast.Tint { Ast.signed = false; bits = 19 } ] ->
    ()
  | _ -> Alcotest.fail "sized parameter kinds"

let test_parse_for_variants () =
  let parse_ok src =
    match Parser.parse_func src with
    | _ -> true
    | exception Parser.Error _ -> false
  in
  Alcotest.(check bool) "i++" true
    (parse_ok "void f(int A[4]) { int i; for (i=0;i<4;i++) A[i]=i; }");
  Alcotest.(check bool) "i+=2" true
    (parse_ok "void f(int A[4]) { int i; for (i=0;i<4;i+=2) A[i]=i; }");
  Alcotest.(check bool) "i=i+1" true
    (parse_ok "void f(int A[4]) { int i; for (i=0;i<4;i=i+1) A[i]=i; }");
  Alcotest.(check bool) "countdown" true
    (parse_ok "void f(int A[4]) { int i; for (i=3;i>=0;i--) A[i]=i; }");
  Alcotest.(check bool) "int in header" true
    (parse_ok "void f(int A[4]) { for (int i=0;i<4;i++) A[i]=i; }")

let test_parse_compound_assign () =
  let f = Parser.parse_func "int f(int a) { a += 3; a -= 1; a++; return a; }" in
  Alcotest.(check int) "statements" 4 (List.length f.Ast.body)

let test_parse_errors () =
  let fails src =
    match Parser.parse_program src with
    | _ -> false
    | exception Parser.Error _ -> true
  in
  Alcotest.(check bool) "missing semicolon" true (fails "int f() { return 1 }");
  Alcotest.(check bool) "bad for update" true
    (fails "void f(int A[4]) { int i, j; for (i=0;i<4;j++) A[i]=i; }");
  Alcotest.(check bool) "ternary rejected" true
    (fails "int f(int a) { return a ? 1 : 2; }");
  Alcotest.(check bool) "unclosed block" true (fails "int f() { return 1;")

let test_pretty_roundtrip () =
  (* Pretty-printing then reparsing yields a structurally equal program. *)
  let check_roundtrip src =
    let p1 = Parser.parse_program src in
    let printed = Pretty.program_to_string p1 in
    let p2 = Parser.parse_program printed in
    Alcotest.(check int) "same function count"
      (List.length p1.Ast.funcs) (List.length p2.Ast.funcs);
    List.iter2
      (fun (f1 : Ast.func) (f2 : Ast.func) ->
        Alcotest.(check string) "name" f1.Ast.fname f2.Ast.fname;
        Alcotest.(check int) "body size" (List.length f1.Ast.body)
          (List.length f2.Ast.body))
      p1.Ast.funcs p2.Ast.funcs
  in
  check_roundtrip fir_source;
  check_roundtrip accumulator_source;
  check_roundtrip if_else_source

(* ------------------------------------------------------------------ *)
(* Semantic checks                                                     *)
(* ------------------------------------------------------------------ *)

let semant_ok ?(luts = []) src =
  match Semant.check_program ~luts (Parser.parse_program src) with
  | _ -> true
  | exception Semant.Error _ -> false

let test_semant_accepts_kernels () =
  Alcotest.(check bool) "fir" true (semant_ok fir_source);
  Alcotest.(check bool) "accumulator" true (semant_ok accumulator_source);
  Alcotest.(check bool) "if_else" true (semant_ok if_else_source)

let test_semant_rejects_recursion () =
  Alcotest.(check bool) "direct" false
    (semant_ok "int f(int n) { return f(n - 1); }");
  Alcotest.(check bool) "mutual" false
    (semant_ok "int f(int n) { return g(n); } int g(int n) { return f(n); }")

let test_semant_rejects_bad_programs () =
  Alcotest.(check bool) "undeclared var" false
    (semant_ok "int f(int a) { return a + zz; }");
  Alcotest.(check bool) "array without index" false
    (semant_ok "int f(int A[4]) { return A; }");
  Alcotest.(check bool) "wrong dims" false
    (semant_ok "int f(int A[4][4]) { return A[1]; }");
  Alcotest.(check bool) "deref non-pointer" false
    (semant_ok "int f(int a) { return *a; }");
  Alcotest.(check bool) "assign whole array" false
    (semant_ok "void f(int A[4]) { A = 3; }");
  Alcotest.(check bool) "unknown call" false
    (semant_ok "int f(int a) { return mystery(a); }")

let test_semant_luts () =
  let luts =
    [ "cos_lut",
      { Semant.lut_in = Ast.make_ikind ~signed:false 10;
        lut_out = Ast.make_ikind ~signed:true 16 } ]
  in
  Alcotest.(check bool) "registered lut accepted" true
    (semant_ok ~luts "int f(uint10 x) { return cos_lut(x); }");
  Alcotest.(check bool) "unregistered lut rejected" false
    (semant_ok "int f(uint10 x) { return cos_lut(x); }")

let test_semant_feedback_intrinsics () =
  Alcotest.(check bool) "load_prev/store2next accepted" true
    (semant_ok
       "int sum = 0;\n\
        void dp(int t0, int* t1) {\n\
       \  int t2;\n\
       \  t2 = ROCCC_load_prev(sum) + t0;\n\
       \  ROCCC_store2next(sum, t2);\n\
       \  *t1 = sum;\n\
        }")

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)
(* ------------------------------------------------------------------ *)

let run_fir input =
  let outcome =
    Interp.run_source fir_source "fir"
      ~arrays:[ "A", Array.map Int64.of_int input ]
  in
  match List.assoc_opt "C" outcome.Interp.arrays with
  | Some c -> Array.map Int64.to_int c
  | None -> Alcotest.fail "no output array C"

let fir_reference a i = (3 * a.(i)) + (5 * a.(i + 1)) + (7 * a.(i + 2))
                        + (9 * a.(i + 3)) - a.(i + 4)

let test_interp_fir () =
  let input = Array.init 21 (fun i -> (i * 7) - 30) in
  let output = run_fir input in
  for i = 0 to 16 do
    Alcotest.(check int)
      (Printf.sprintf "C[%d]" i)
      (fir_reference input i) output.(i)
  done

let test_interp_accumulator () =
  let input = Array.init 32 (fun i -> i) in
  let outcome =
    Interp.run_source accumulator_source "acc"
      ~arrays:[ "A", Array.map Int64.of_int input ]
  in
  match outcome.Interp.pointer_outputs with
  | [ ("out", v) ] -> Alcotest.(check int64) "sum" 496L v
  | _ -> Alcotest.fail "expected single pointer output"

let test_interp_if_else () =
  let run x1 x2 =
    let outcome =
      Interp.run_source if_else_source "if_else"
        ~scalars:[ "x1", Int64.of_int x1; "x2", Int64.of_int x2 ]
    in
    let get n = List.assoc n outcome.Interp.pointer_outputs in
    Int64.to_int (get "x3"), Int64.to_int (get "x4")
  in
  (* Reference semantics from the paper's Figure 5. *)
  let reference x1 x2 =
    let c = x1 - x2 in
    let a = if c < x2 then x1 * x1 else (x1 * x2) + 3 in
    c - a, a
  in
  List.iter
    (fun (x1, x2) ->
      let got = run x1 x2 in
      let want = reference x1 x2 in
      Alcotest.(check (pair int int))
        (Printf.sprintf "if_else %d %d" x1 x2)
        want got)
    [ 0, 0; 5, 3; 3, 5; -4, 10; 100, -100; 7, 7 ]

let test_interp_truncation () =
  (* An 8-bit unsigned variable wraps at 256. *)
  let outcome =
    Interp.run_source
      "void f(int a, uint8* out) { *out = a; }" "f"
      ~scalars:[ "a", 300L ]
  in
  Alcotest.(check int64) "wrapped" 44L
    (List.assoc "out" outcome.Interp.pointer_outputs)

let test_interp_signed_truncation () =
  let outcome =
    Interp.run_source "void f(int a, int8* out) { *out = a; }" "f"
      ~scalars:[ "a", 200L ]
  in
  Alcotest.(check int64) "sign wrapped" (-56L)
    (List.assoc "out" outcome.Interp.pointer_outputs)

(* Calling a helper whose formals include a pointer output used to die on
   an [assert false]: the binder only bound scalar formals but then
   required the shapes to match exactly. Pointer formals bind to fresh
   cells; the helper's return value is the call's value. *)
let ptr_call_source =
  "int helper(int *o, int x) {\n\
  \  *o = x + 1;\n\
  \  return x * 2;\n\
   }\n\
   void k(int A[4], int B[4]) {\n\
  \  int i;\n\
  \  for (i = 0; i < 4; i = i + 1) {\n\
  \    B[i] = helper(A[i]);\n\
  \  }\n\
   }\n"

let test_interp_pointer_formal_call () =
  let input = [| 3L; 5L; 7L; 11L |] in
  let outcome =
    Interp.run_source ptr_call_source "k" ~arrays:[ "A", input ]
  in
  match List.assoc_opt "B" outcome.Interp.arrays with
  | Some b ->
    Array.iteri
      (fun i a ->
        Alcotest.(check int64)
          (Printf.sprintf "B[%d]" i)
          (Int64.mul a 2L) b.(i))
      input
  | None -> Alcotest.fail "no output array B"

let test_compile_pointer_formal_call () =
  (* The same shape must survive inlining and lower to VHDL. *)
  match Roccc_core.Driver.compile ~entry:"k" ptr_call_source with
  | c ->
    Alcotest.(check bool) "produced VHDL" true
      (Roccc_vhdl.Ast.to_files c.Roccc_core.Driver.design <> [])
  | exception Roccc_core.Driver.Error msg ->
    Alcotest.fail ("pointer-formal call failed to compile: " ^ msg)

let test_interp_division_by_zero () =
  match
    Interp.run_source "void f(int a, int* o) { *o = a / 0; }" "f"
      ~scalars:[ "a", 5L ]
  with
  | exception Interp.Error _ -> ()
  | _ -> Alcotest.fail "expected a runtime error"

let test_interp_step_budget () =
  (* A very long loop exhausts a small step budget instead of hanging. *)
  let prog =
    Parser.parse_program
      "void f(int* o) { int i; int s; s = 0; for (i=0;i<1000000;i++) { s = s \
       + 1; } *o = s; }"
  in
  let rt = Interp.create ~max_steps:1000 prog in
  match Interp.run rt "f" with
  | exception Interp.Error _ -> ()
  | _ -> Alcotest.fail "expected step budget error"

let test_interp_function_call () =
  let outcome =
    Interp.run_source
      "int square(int x) { return x * x; }\n\
       void f(int a, int* o) { *o = square(a) + square(a + 1); }"
      "f" ~scalars:[ "a", 3L ]
  in
  Alcotest.(check int64) "9+16" 25L
    (List.assoc "o" outcome.Interp.pointer_outputs)

let test_interp_lut () =
  let luts =
    [ "double_lut",
      { Semant.lut_in = Ast.make_ikind ~signed:false 8;
        lut_out = Ast.make_ikind ~signed:false 9 } ]
  in
  let outcome =
    Interp.run_source ~luts
      ~lut_funcs:[ "double_lut", fun v -> Int64.mul v 2L ]
      "void f(uint8 a, uint9* o) { *o = double_lut(a); }" "f"
      ~scalars:[ "a", 21L ]
  in
  Alcotest.(check int64) "lut applied" 42L
    (List.assoc "o" outcome.Interp.pointer_outputs)

let test_interp_shifts_and_bits () =
  let outcome =
    Interp.run_source
      "void f(int a, int b, int* o1, int* o2, int* o3, int* o4) {\n\
      \  *o1 = a << 2; *o2 = a >> 1; *o3 = (a & b) | 8; *o4 = a ^ b;\n\
       }"
      "f"
      ~scalars:[ "a", 12L; "b", 10L ]
  in
  let get n = List.assoc n outcome.Interp.pointer_outputs in
  Alcotest.(check int64) "shl" 48L (get "o1");
  Alcotest.(check int64) "shr" 6L (get "o2");
  Alcotest.(check int64) "and-or" 8L (get "o3");
  Alcotest.(check int64) "xor" 6L (get "o4")

let test_interp_two_dim () =
  let outcome =
    Interp.run_source
      "void f(int A[2][3], int* o) { *o = A[0][0] + A[1][2]; }" "f"
      ~arrays:[ "A", [| 1L; 2L; 3L; 4L; 5L; 6L |] ]
  in
  Alcotest.(check int64) "row major" 7L
    (List.assoc "o" outcome.Interp.pointer_outputs)

let test_interp_globals_reset () =
  (* Running a kernel twice must re-initialize globals (sum = 0). *)
  let prog = Parser.parse_program accumulator_source in
  let rt = Interp.create prog in
  let arr = Array.init 32 Int64.of_int in
  let first = Interp.run rt "acc" ~arrays:[ "A", arr ] in
  let second = Interp.run rt "acc" ~arrays:[ "A", arr ] in
  Alcotest.(check int64) "first" 496L
    (List.assoc "out" first.Interp.pointer_outputs);
  Alcotest.(check int64) "second equals first" 496L
    (List.assoc "out" second.Interp.pointer_outputs)

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

let qcheck_case = QCheck_alcotest.to_alcotest

let prop_fir_matches_reference =
  QCheck.Test.make ~count:100 ~name:"fir interpreter matches direct OCaml"
    QCheck.(array_of_size (Gen.return 21) (int_range (-1000) 1000))
    (fun input ->
      let output = run_fir input in
      Array.to_list output
      = List.init 17 (fun i -> fir_reference input i))

let prop_truncate_idempotent =
  QCheck.Test.make ~count:500 ~name:"bit truncation is idempotent"
    QCheck.(pair (int_range 1 32) int64)
    (fun (width, v) ->
      let open Roccc_util.Bits in
      let t1 = truncate ~signed:true width v in
      let t2 = truncate ~signed:true width t1 in
      Int64.equal t1 t2
      &&
      let u1 = truncate ~signed:false width v in
      let u2 = truncate ~signed:false width u1 in
      Int64.equal u1 u2)

let prop_truncate_in_range =
  QCheck.Test.make ~count:500 ~name:"truncated values fit their width"
    QCheck.(pair (int_range 1 32) int64)
    (fun (width, v) ->
      let open Roccc_util.Bits in
      fits ~signed:true width (truncate ~signed:true width v)
      && fits ~signed:false width (truncate ~signed:false width v))

let prop_bits_for_signed_sound =
  QCheck.Test.make ~count:500 ~name:"bits_for_signed yields a fitting width"
    QCheck.(int_range (-1_000_000) 1_000_000)
    (fun v ->
      let v = Int64.of_int v in
      let w = Roccc_util.Bits.bits_for_signed v in
      w <= 64 && Roccc_util.Bits.fits ~signed:true (min w 63) v)

let prop_clog2 =
  QCheck.Test.make ~count:200 ~name:"clog2 bounds"
    QCheck.(int_range 1 100000)
    (fun n ->
      let w = Roccc_util.Bits.clog2 n in
      (1 lsl w) >= n && (w = 0 || (1 lsl (w - 1)) < n))

let prop_pretty_roundtrip_exprs =
  (* Random expression trees print and reparse to the same tree. *)
  let gen_expr =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [ map (fun i -> Ast.Const (Int64.of_int i)) (int_range 0 1000);
              map (fun c -> Ast.Var (Printf.sprintf "v%c" c))
                (char_range 'a' 'e') ]
        else
          let sub = self (n / 2) in
          oneof
            [ map (fun i -> Ast.Const (Int64.of_int i)) (int_range 0 1000);
              map2 (fun a b -> Ast.Binop (Ast.Add, a, b)) sub sub;
              map2 (fun a b -> Ast.Binop (Ast.Mul, a, b)) sub sub;
              map2 (fun a b -> Ast.Binop (Ast.Sub, a, b)) sub sub;
              map2 (fun a b -> Ast.Binop (Ast.Band, a, b)) sub sub;
              map2 (fun a b -> Ast.Binop (Ast.Shl, a, b)) sub sub;
              map (fun a -> Ast.Unop (Ast.Neg, a)) sub ]))
  in
  QCheck.Test.make ~count:200 ~name:"expression pretty/parse round-trip"
    (QCheck.make gen_expr ~print:Pretty.expr_to_string)
    (fun e ->
      let src =
        Printf.sprintf
          "int f(int va, int vb, int vc, int vd, int ve) { return %s; }"
          (Pretty.expr_to_string e)
      in
      match Parser.parse_func src with
      | { Ast.body = [ Ast.Sreturn (Some e') ]; _ } -> Ast.equal_expr e e'
      | _ -> false
      | exception Parser.Error _ -> false)

(* ------------------------------------------------------------------ *)

let suites =
  [ "cfront.lexer",
    [ Alcotest.test_case "simple declaration" `Quick test_lex_simple;
      Alcotest.test_case "multi-char operators" `Quick test_lex_operators;
      Alcotest.test_case "comments" `Quick test_lex_comments;
      Alcotest.test_case "hex and suffixes" `Quick test_lex_hex;
      Alcotest.test_case "error position" `Quick test_lex_error_position;
      Alcotest.test_case "unterminated comment" `Quick
        test_lex_unterminated_comment;
      Alcotest.test_case "integer literal overflow" `Quick
        test_lex_integer_overflow ];
    "cfront.parser",
    [ Alcotest.test_case "FIR kernel" `Quick test_parse_fir;
      Alcotest.test_case "precedence" `Quick test_parse_precedence;
      Alcotest.test_case "parentheses" `Quick test_parse_parens_override;
      Alcotest.test_case "if/else with pointer outputs" `Quick
        test_parse_if_else;
      Alcotest.test_case "two-dimensional arrays" `Quick
        test_parse_two_dim_array;
      Alcotest.test_case "sized integer types" `Quick test_parse_sized_ints;
      Alcotest.test_case "for-loop update forms" `Quick
        test_parse_for_variants;
      Alcotest.test_case "compound assignment" `Quick
        test_parse_compound_assign;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "pretty round-trip" `Quick test_pretty_roundtrip ];
    "cfront.semant",
    [ Alcotest.test_case "accepts paper kernels" `Quick
        test_semant_accepts_kernels;
      Alcotest.test_case "rejects recursion" `Quick
        test_semant_rejects_recursion;
      Alcotest.test_case "rejects ill-formed programs" `Quick
        test_semant_rejects_bad_programs;
      Alcotest.test_case "lookup-table signatures" `Quick test_semant_luts;
      Alcotest.test_case "feedback intrinsics" `Quick
        test_semant_feedback_intrinsics ];
    "cfront.interp",
    [ Alcotest.test_case "FIR" `Quick test_interp_fir;
      Alcotest.test_case "accumulator" `Quick test_interp_accumulator;
      Alcotest.test_case "if_else" `Quick test_interp_if_else;
      Alcotest.test_case "unsigned truncation" `Quick test_interp_truncation;
      Alcotest.test_case "signed truncation" `Quick
        test_interp_signed_truncation;
      Alcotest.test_case "division by zero" `Quick
        test_interp_division_by_zero;
      Alcotest.test_case "call with pointer formal" `Quick
        test_interp_pointer_formal_call;
      Alcotest.test_case "pointer-formal call compiles" `Quick
        test_compile_pointer_formal_call;
      Alcotest.test_case "step budget" `Quick test_interp_step_budget;
      Alcotest.test_case "function call" `Quick test_interp_function_call;
      Alcotest.test_case "lookup table" `Quick test_interp_lut;
      Alcotest.test_case "shifts and bitwise ops" `Quick
        test_interp_shifts_and_bits;
      Alcotest.test_case "two-dimensional arrays" `Quick test_interp_two_dim;
      Alcotest.test_case "globals reset between runs" `Quick
        test_interp_globals_reset ];
    "cfront.properties",
    [ qcheck_case prop_fir_matches_reference;
      qcheck_case prop_truncate_idempotent;
      qcheck_case prop_truncate_in_range;
      qcheck_case prop_bits_for_signed_sound;
      qcheck_case prop_clog2;
      qcheck_case prop_pretty_roundtrip_exprs ] ]
