(* Tests for the batch compilation service (lib/service): the
   content-addressed pass cache, the domain scheduler, structured tracing
   and the typed VM error. *)

module Driver = Roccc_core.Driver
module Pass = Roccc_core.Pass
module Service = Roccc_service.Service
module Cache = Roccc_service.Cache
module Trace = Roccc_service.Trace
module Scheduler = Roccc_service.Scheduler
module Pool = Roccc_service.Pool
module Fingerprint = Roccc_service.Fingerprint
module Instr = Roccc_vm.Instr

let fir_source = Roccc_core.Kernels.paper_fir_source

let acc_source = Roccc_core.Kernels.paper_acc_source

let bad_source = "void broken(int A[8], int* out) {\n  int i\n  *out = 1;\n}\n"

let fir_job ?(label = "fir") ?(options = Driver.default_options) () =
  { Service.label; source = fir_source; entry = "fir"; options; luts = [] }

let origin = Alcotest.testable
    (fun ppf o -> Format.pp_print_string ppf (Service.origin_name o))
    (fun a b -> a = b)

(* ---- cache ---- *)

let test_cache_hit_identical () =
  let cache = Cache.create () in
  let r1 = Service.compile_cached ~cache (fir_job ()) in
  let r2 = Service.compile_cached ~cache (fir_job ()) in
  Alcotest.check origin "first compile is cold" Service.Cold
    r1.Service.r_origin;
  Alcotest.check origin "identical job hits memory" Service.Warm_memory
    r2.Service.r_origin;
  Alcotest.(check bool) "same VHDL" true
    (r1.Service.r_vhdl = r2.Service.r_vhdl);
  let s = Cache.stats cache in
  Alcotest.(check bool) "hits counted" true (s.Cache.hits > 0)

let test_cache_miss_on_option_change () =
  let cache = Cache.create () in
  let _ = Service.compile_cached ~cache (fir_job ()) in
  (* a back-end option change misses the full artifact but reuses the
     front-end stages *)
  let bus2 =
    fir_job ~options:{ Driver.default_options with Driver.bus_elements = 2 } ()
  in
  let r2 = Service.compile_cached ~cache bus2 in
  Alcotest.check origin "bus change reuses stages only" Service.Warm_stage
    r2.Service.r_origin;
  (* a front-end option change invalidates the chain from the first
     affected pass but still resumes from the shared prefix (parse through
     the first constant-fold) *)
  let unrolled =
    fir_job
      ~options:{ Driver.default_options with Driver.unroll_inner_max = 4 } ()
  in
  let r3 = Service.compile_cached ~cache unrolled in
  Alcotest.check origin "front option change resumes mid-pipeline"
    Service.Warm_partial r3.Service.r_origin;
  (* and a source change too *)
  let other =
    { (fir_job ()) with Service.source = acc_source; entry = "acc";
      label = "acc" }
  in
  let r4 = Service.compile_cached ~cache other in
  Alcotest.check origin "source change is cold" Service.Cold
    r4.Service.r_origin

let test_option_fingerprints () =
  let base = Driver.default_options in
  let bus2 = { base with Driver.bus_elements = 2 } in
  let unroll2 = { base with Driver.unroll_outer_factor = 2 } in
  Alcotest.(check string) "bus width is not a front-end option"
    (Driver.front_options_fingerprint base)
    (Driver.front_options_fingerprint bus2);
  Alcotest.(check bool) "unroll factor is a front-end option" false
    (String.equal
       (Driver.front_options_fingerprint base)
       (Driver.front_options_fingerprint unroll2));
  Alcotest.(check bool) "full fingerprint sees the bus width" false
    (String.equal (Driver.options_fingerprint base)
       (Driver.options_fingerprint bus2))

(* Regression: the finished artifact's key includes the pass selection — a
   run disabling an optional pass must not be served the default run's
   artifact, and vice versa. *)
let test_artifact_key_sees_pass_selection () =
  let cache = Cache.create () in
  let r1 = Service.compile_cached ~cache (fir_job ()) in
  Alcotest.check origin "default compile is cold" Service.Cold
    r1.Service.r_origin;
  let no_opt =
    { (Pass.default_config ()) with Pass.disabled_passes = [ "vm-optimize" ] }
  in
  let r2 = Service.compile_cached ~cache ~config:no_opt (fir_job ()) in
  (match r2.Service.r_origin with
  | Service.Warm_memory | Service.Warm_disk | Service.Coalesced ->
    Alcotest.fail "selection change was served the default artifact"
  | Service.Cold | Service.Warm_partial | Service.Warm_stage -> ());
  Alcotest.(check bool) "disabled pass absent from the trace" false
    (List.mem "vm-optimize" r2.Service.r_pass_trace);
  let r3 = Service.compile_cached ~cache ~config:no_opt (fir_job ()) in
  Alcotest.check origin "identical selection hits the artifact"
    Service.Warm_memory r3.Service.r_origin;
  let r4 = Service.compile_cached ~cache (fir_job ()) in
  Alcotest.check origin "default selection still has its own artifact"
    Service.Warm_memory r4.Service.r_origin

let test_disk_cache_survives_process () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "roccc_cache_test_%d" (Unix.getpid ()))
  in
  let cache1 = Cache.create ~disk_dir:dir () in
  let r1 = Service.compile_cached ~cache:cache1 (fir_job ()) in
  Alcotest.check origin "cold in the first cache" Service.Cold
    r1.Service.r_origin;
  (* a fresh cache over the same directory models a new process *)
  let cache2 = Cache.create ~disk_dir:dir () in
  let r2 = Service.compile_cached ~cache:cache2 (fir_job ()) in
  Alcotest.check origin "artifact reloaded from disk" Service.Warm_disk
    r2.Service.r_origin;
  Alcotest.(check bool) "identical VHDL from disk" true
    (r1.Service.r_vhdl = r2.Service.r_vhdl);
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  (try Sys.rmdir dir with Sys_error _ -> ())

(* ---- batches ---- *)

let test_batch_isolates_failure () =
  let jobs =
    [ fir_job ();
      { Service.label = "broken"; source = bad_source; entry = "broken";
        options = Driver.default_options; luts = [] };
      { Service.label = "acc"; source = acc_source; entry = "acc";
        options = Driver.default_options; luts = [] } ]
  in
  let report = Service.run_batch ~num_domains:2 jobs in
  Alcotest.(check int) "three slots" 3 (Array.length report.Service.rp_results);
  (match report.Service.rp_results.(0) with
  | _, Ok s -> Alcotest.(check string) "fir ok" "fir" s.Service.r_entry
  | _, Error msg -> Alcotest.failf "fir failed: %s" msg);
  (match report.Service.rp_results.(1) with
  | _, Ok _ -> Alcotest.fail "broken kernel unexpectedly compiled"
  | _, Error msg ->
    Alcotest.(check bool) "parse error reported" true
      (String.length msg > 0
      && String.length msg >= 5
      && String.sub msg 0 5 = "parse"));
  (match report.Service.rp_results.(2) with
  | _, Ok s -> Alcotest.(check string) "acc ok" "acc" s.Service.r_entry
  | _, Error msg -> Alcotest.failf "acc failed: %s" msg);
  Alcotest.(check int) "one failure listed" 1
    (List.length (Service.failures report))

let test_parallel_matches_sequential () =
  let jobs = Service.table1_jobs () in
  let seq = Service.run_batch ~num_domains:1 jobs in
  let par = Service.run_batch ~num_domains:4 jobs in
  Array.iter2
    (fun (j1, r1) (_, r2) ->
      match r1, r2 with
      | Ok s1, Ok s2 ->
        Alcotest.(check bool)
          (j1.Service.label ^ " VHDL byte-identical across domain counts")
          true
          (s1.Service.r_vhdl = s2.Service.r_vhdl)
      | Error m, _ | _, Error m ->
        Alcotest.failf "%s failed: %s" j1.Service.label m)
    seq.Service.rp_results par.Service.rp_results

let test_warm_batch_faster_with_hits () =
  let cache = Cache.create () in
  let jobs = Service.table1_jobs () in
  let cold = Service.run_batch ~cache ~num_domains:1 jobs in
  let warm = Service.run_batch ~cache ~num_domains:1 jobs in
  let stats = Option.get warm.Service.rp_cache in
  Alcotest.(check bool) "warm run hit the cache" true
    (stats.Cache.hits >= List.length jobs);
  Alcotest.(check bool) "warm run is faster" true
    (warm.Service.rp_wall_s < cold.Service.rp_wall_s);
  List.iter
    (fun ((_ : Service.job), (s : Service.success)) ->
      Alcotest.check origin "every warm job came from memory"
        Service.Warm_memory s.Service.r_origin)
    (Service.successes warm)

let test_sweep_grid () =
  let jobs =
    Service.sweep_jobs ~source:fir_source ~entry:"fir"
      ~unroll_factors:[ 1 ] ~bus_widths:[ 1; 2; 4 ] ()
  in
  Alcotest.(check int) "grid size" 3 (List.length jobs);
  let cache = Cache.create () in
  let report = Service.run_batch ~cache ~num_domains:1 jobs in
  Alcotest.(check int) "no failures" 0
    (List.length (Service.failures report));
  match Array.to_list report.Service.rp_results with
  | (_, Ok first) :: rest ->
    Alcotest.check origin "first grid point is cold" Service.Cold
      first.Service.r_origin;
    List.iter
      (fun (_, r) ->
        match r with
        | Ok s ->
          Alcotest.check origin "bus-only variants reuse the front end"
            Service.Warm_stage s.Service.r_origin
        | Error m -> Alcotest.failf "sweep job failed: %s" m)
      rest
  | _ -> Alcotest.fail "unexpected sweep report shape"

(* Acceptance criterion: a back-end option sweep reuses every mid-end
   pass — the trace shows one cached span per mid-end pass. *)
let test_sweep_per_pass_cache_hits () =
  let cache = Cache.create () in
  let _ = Service.compile_cached ~cache (fir_job ()) in
  let trace = Trace.create () in
  let bus2 =
    fir_job ~label:"fir.b2"
      ~options:{ Driver.default_options with Driver.bus_elements = 2 } ()
  in
  let r = Service.compile_cached ~cache ~trace bus2 in
  Alcotest.check origin "bus sweep only re-runs the back end"
    Service.Warm_stage r.Service.r_origin;
  let spans = Trace.spans trace in
  let cached_names =
    List.filter_map
      (fun (sp : Trace.span) ->
        if sp.Trace.sp_cat = "pass" && List.mem_assoc "cached" sp.Trace.sp_args
        then Some sp.Trace.sp_name
        else None)
      spans
  in
  let mid_names =
    List.map
      (fun (p : Roccc_core.Pass.pass) -> p.Roccc_core.Pass.name)
      (Roccc_core.Pass.executed Driver.default_options
         (Roccc_core.Pass.front_passes @ Roccc_core.Pass.kernel_passes))
  in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "mid-end pass %s hit the cache" name)
        true (List.mem name cached_names))
    mid_names;
  (* back-end passes actually ran: live spans without the cached marker *)
  Alcotest.(check bool) "back end ran live" true
    (List.exists
       (fun (sp : Trace.span) ->
         sp.Trace.sp_cat = "pass"
         && sp.Trace.sp_name = "vhdl-generation"
         && not (List.mem_assoc "cached" sp.Trace.sp_args))
       spans)

(* ---- scheduler ---- *)

let test_scheduler_deterministic_slots () =
  let jobs = Array.init 20 (fun i -> i) in
  let results =
    Scheduler.parallel_map ~num_domains:4
      ~f:(fun ~tid x ->
        ignore tid;
        if x mod 5 = 3 then failwith (Printf.sprintf "boom %d" x) else x * x)
      jobs
  in
  Array.iteri
    (fun i r ->
      if i mod 5 = 3 then
        match r with
        | Error msg ->
          Alcotest.(check bool) "failure message kept" true
            (String.length msg > 0)
        | Ok _ -> Alcotest.failf "slot %d should have failed" i
      else
        match r with
        | Ok v -> Alcotest.(check int) "slot value" (i * i) v
        | Error msg -> Alcotest.failf "slot %d failed: %s" i msg)
    results

let test_effective_workers () =
  let hw = Scheduler.default_domains () in
  Alcotest.(check int) "clamped to the job count" 1
    (Scheduler.effective_workers ~num_domains:8 1);
  Alcotest.(check int) "clamped to the hardware parallelism" hw
    (Scheduler.effective_workers ~num_domains:(hw * 4) 64);
  Alcotest.(check int) "zero request means the default" (min hw 64)
    (Scheduler.effective_workers ~num_domains:0 64);
  Alcotest.(check int) "clamp:false honors oversubscription" (hw * 2)
    (Scheduler.effective_workers ~clamp:false ~num_domains:(hw * 2) 64);
  Alcotest.(check int) "empty batch still gets one worker" 1
    (Scheduler.effective_workers ~num_domains:4 0)

let test_scheduler_chunk_edge_cases () =
  let jobs = Array.init 7 (fun i -> i) in
  let f ~tid x = ignore tid; x + 1 in
  (* chunk larger than the batch and chunk = 1 both cover every slot *)
  List.iter
    (fun chunk ->
      let results = Scheduler.parallel_map ~num_domains:4 ~chunk ~f jobs in
      Array.iteri
        (fun i r ->
          Alcotest.(check (result int string))
            (Printf.sprintf "chunk %d slot %d" chunk i)
            (Ok (i + 1)) r)
        results)
    [ 1; 3; 100 ];
  let empty = Scheduler.parallel_map ~num_domains:4 ~f (([||] : int array)) in
  Alcotest.(check int) "empty batch" 0 (Array.length empty)

(* Regression for the negative scaling the service bench used to show:
   requesting more domains than the machine has cores must not slow a
   CPU-bound batch down (the scheduler clamps to the hardware parallelism
   and spawns nothing it cannot use). *)
let test_scheduler_scaling_guard () =
  let work ~tid x =
    ignore tid;
    let acc = ref x in
    for i = 1 to 150_000 do
      acc := ((!acc * 1103515245) + 12345 + i) land 0x3FFFFFFF
    done;
    !acc
  in
  let jobs = Array.init 24 (fun i -> i) in
  let time d =
    let t0 = Unix.gettimeofday () in
    let r = Scheduler.parallel_map ~num_domains:d ~f:work jobs in
    r, Unix.gettimeofday () -. t0
  in
  (* warm up once so allocation noise lands outside the measurements *)
  let _ = time 1 in
  let r1, t1 = time 1 in
  let r4, t4 = time 4 in
  Alcotest.(check bool) "same results at 1 and 4 domains" true (r1 = r4);
  Alcotest.(check bool)
    (Printf.sprintf
       "4-domain wall (%.1f ms) within tolerance of 1-domain (%.1f ms)"
       (1e3 *. t4) (1e3 *. t1))
    true
    (t4 <= (t1 *. 1.5) +. 0.01)

let test_run_batch_reports_workers () =
  let report = Service.run_batch ~num_domains:4 [ fir_job () ] in
  Alcotest.(check int) "requested domains recorded" 4
    report.Service.rp_domains;
  Alcotest.(check int) "one job uses one worker" 1 report.Service.rp_workers;
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report json carries workers" true
    (contains "\"workers\":" (Service.report_json report))

(* ---- tracing ---- *)

let test_trace_export () =
  let trace = Trace.create () in
  let cache = Cache.create () in
  let report =
    Service.run_batch ~cache ~trace ~num_domains:2 [ fir_job () ]
  in
  let spans = Trace.spans trace in
  Alcotest.(check bool) "pass spans recorded" true
    (List.exists
       (fun (sp : Trace.span) -> sp.Trace.sp_name = "datapath-build")
       spans);
  Alcotest.(check bool) "job span recorded" true
    (List.exists (fun (sp : Trace.span) -> sp.Trace.sp_cat = "job") spans);
  let json = Trace.to_chrome_json ~meta:(Service.trace_meta report) trace in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "chrome envelope" true
    (contains "\"traceEvents\"" json);
  Alcotest.(check bool) "meta carries wall time" true
    (contains "\"wall_s\"" json);
  Alcotest.(check bool) "meta carries cache hits" true
    (contains "\"cache_hits\"" json);
  let totals = Trace.pass_totals trace in
  Alcotest.(check bool) "pass totals non-empty" true (totals <> []);
  let json2 = Service.report_json report in
  Alcotest.(check bool) "report json lists jobs" true
    (contains "\"jobs\"" json2)

(* ---- instrumented driver ---- *)

let test_driver_instrument_hook () =
  let seen = ref [] in
  let c =
    Driver.compile
      ~instrument:(fun ps -> seen := ps.Driver.pass_name :: !seen)
      ~entry:"fir" fir_source
  in
  Alcotest.(check (list string)) "hook saw exactly the pass trace"
    c.Driver.pass_trace (List.rev !seen)

(* ---- typed VM error ---- *)

let test_vm_error_typed () =
  Alcotest.check_raises "division by zero is a typed error"
    (Instr.Vm_error "division by zero")
    (fun () ->
      ignore
        (Instr.eval_op
           ~lut:(fun _ v -> v)
           ~lpr:(fun _ -> 0L)
           Instr.Div [ 1L; 0L ]));
  Alcotest.check_raises "arity mismatch is a typed error"
    (Instr.Vm_error "arity mismatch for add: got 1 operand(s), expected 2")
    (fun () ->
      ignore
        (Instr.eval_op
           ~lut:(fun _ v -> v)
           ~lpr:(fun _ -> 0L)
           Instr.Add [ 1L ]))

let test_interp_div_zero_is_driver_error () =
  let src =
    "void divk(int A[4], int B[4], int C[4]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 4; i++) {\n\
    \    C[i] = A[i] / B[i];\n\
    \  }\n\
     }\n"
  in
  let c = Driver.compile ~entry:"divk" src in
  let arrays =
    [ "A", [| 8L; 6L; 4L; 2L |]; "B", [| 2L; 1L; 0L; 1L |] ]
  in
  match Driver.interpret ~arrays c with
  | _ -> Alcotest.fail "interpreting a division by zero should not succeed"
  | exception Driver.Error msg ->
    Alcotest.(check bool) "user-facing message" true
      (String.length msg > 0)

(* ------------------------------------------------------------------ *)
(* Resilience: fault injection, cache hardening, the serve protocol    *)
(* ------------------------------------------------------------------ *)

module Faults = Roccc_service.Faults
module Server = Roccc_service.Server
module Json = Roccc_service.Json
module Metrics = Roccc_service.Metrics

(* Every test that installs a fault plan must clear it, or the global
   plan leaks into unrelated tests. *)
let with_faults spec f =
  (match Faults.parse spec with
  | Ok plan -> Faults.install plan
  | Error msg -> Alcotest.fail ("bad fault spec: " ^ msg));
  Fun.protect ~finally:Faults.clear f

let fresh_tmp_dir =
  let n = ref 0 in
  fun prefix ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) !n)
    in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let test_faults_parse () =
  (match Faults.parse "cache_read:0.5,driver_pass" with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  let rejected spec =
    match Faults.parse spec with
    | Ok _ -> Alcotest.fail ("accepted bad spec " ^ spec)
    | Error _ -> ()
  in
  rejected "bogus_point";
  rejected "cache_read:0";
  rejected "cache_read:1.5";
  rejected "cache_read:nope";
  rejected "cache_read,cache_read:0.5";
  rejected ""

let test_faults_deterministic_accumulator () =
  (* rate 0.5 fires on exactly every second call; rate 1.0 on every
     call — and the sequence is identical across runs. *)
  let fired_pattern () =
    with_faults "scheduler_claim:0.5" (fun () ->
        List.init 8 (fun _ ->
            match Faults.trip "scheduler_claim" with
            | () -> false
            | exception Faults.Injected _ -> true))
  in
  let p1 = fired_pattern () in
  let p2 = fired_pattern () in
  Alcotest.(check (list bool)) "reproducible" p1 p2;
  Alcotest.(check int) "every second call" 4
    (List.length (List.filter Fun.id p1));
  with_faults "driver_pass" (fun () ->
      for _ = 1 to 3 do
        match Faults.trip "driver_pass" with
        | () -> Alcotest.fail "rate 1.0 must fire every call"
        | exception Faults.Injected point ->
          Alcotest.(check string) "point name" "driver_pass" point
      done;
      match Faults.counts () with
      | [ (_, calls, fired) ] ->
        Alcotest.(check (pair int int)) "counts" (3, 3) (calls, fired)
      | cs -> Alcotest.fail (Printf.sprintf "%d count rows" (List.length cs)))

let test_cache_sweeps_stranded_tmp () =
  let dir = fresh_tmp_dir "roccc_sweep" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      (* a write-temporary stranded by a dead process *)
      let stranded = Filename.concat dir "deadbeef.art.tmp.99999" in
      let oc = open_out stranded in
      output_string oc "torn";
      close_out oc;
      let keep = Filename.concat dir "cafe.art" in
      let oc = open_out keep in
      output_string oc "not a tmp";
      close_out oc;
      let cache = Cache.create ~disk_dir:dir () in
      Alcotest.(check bool) "tmp removed" false (Sys.file_exists stranded);
      Alcotest.(check bool) "real artifact kept" true (Sys.file_exists keep);
      Alcotest.(check int) "sweep counted" 1 (Cache.stats cache).Cache.tmp_swept)

let test_cache_write_fault_degrades () =
  let dir = fresh_tmp_dir "roccc_wfault" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      (* rate 1.0: all 3 attempts fail -> the store degrades (dropped on
         disk, kept in memory) instead of raising *)
      with_faults "cache_write" (fun () ->
          let cache = Cache.create ~disk_dir:dir () in
          let r = Service.compile_cached ~cache (fir_job ()) in
          Alcotest.check origin "compile still succeeds" Service.Cold
            r.Service.r_origin;
          let s = Cache.stats cache in
          Alcotest.(check bool) "write retried" true (s.Cache.retries >= 2);
          Alcotest.(check bool) "write degraded" true (s.Cache.io_errors >= 1);
          Alcotest.(check bool) "nothing persisted" true
            (Array.for_all
               (fun f -> not (Filename.check_suffix f ".art"))
               (Sys.readdir dir))))

let test_cache_read_fault_retries_through () =
  let dir = fresh_tmp_dir "roccc_rfault" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let seed = Cache.create ~disk_dir:dir () in
      ignore (Service.compile_cached ~cache:seed (fir_job ()));
      (* rate 0.5 fires on every second trip; the first lookup passes
         (disk hit), the second fires and must be recovered by a retry
         rather than degraded to a miss *)
      with_faults "cache_read:0.5" (fun () ->
          let cache = Cache.create ~disk_dir:dir () in
          let r1 = Service.compile_cached ~cache (fir_job ()) in
          Alcotest.check origin "disk artifact found" Service.Warm_disk
            r1.Service.r_origin;
          let r2 = Service.compile_cached ~cache (fir_job ()) in
          Alcotest.check origin "artifact recovered through retries"
            Service.Warm_memory r2.Service.r_origin;
          let s = Cache.stats cache in
          Alcotest.(check bool) "retries counted" true (s.Cache.retries >= 1);
          Alcotest.(check int) "nothing degraded" 0 s.Cache.io_errors))

let test_flag_validators () =
  let ok = function Ok _ -> true | Error _ -> false in
  Alcotest.(check bool) "positive int ok" true
    (ok (Server.check_positive_int ~flag:"--jobs" 4));
  Alcotest.(check bool) "zero rejected" false
    (ok (Server.check_positive_int ~flag:"--jobs" 0));
  Alcotest.(check bool) "negative rejected" false
    (ok (Server.check_positive_int ~flag:"--jobs" (-2)));
  Alcotest.(check bool) "positive float ok" true
    (ok (Server.check_positive_float ~flag:"--target-ns" 5.0));
  Alcotest.(check bool) "negative float rejected" false
    (ok (Server.check_positive_float ~flag:"--target-ns" (-1.0)));
  Alcotest.(check bool) "nan rejected" false
    (ok (Server.check_positive_float ~flag:"--target-ns" Float.nan));
  Alcotest.(check bool) "default limits valid" true
    (ok (Server.validate_limits Server.default_limits));
  Alcotest.(check bool) "bad queue depth rejected" false
    (ok
       (Server.validate_limits
          { Server.default_limits with Server.queue_depth = 0 }));
  Alcotest.(check bool) "bad deadline rejected" false
    (ok
       (Server.validate_limits
          { Server.default_limits with Server.deadline_ms = Some (-5.0) }));
  match Server.check_positive_int ~flag:"--jobs" 0 with
  | Error msg ->
    Alcotest.(check bool) "message names the flag" true
      (String.length msg > 6 && String.sub msg 0 6 = "--jobs")
  | Ok _ -> assert false

let test_check_jobs_auto () =
  let ok = function Ok _ -> true | Error _ -> false in
  Alcotest.(check bool) "0 means auto and is accepted" true
    (ok (Server.check_jobs ~flag:"--jobs" 0));
  Alcotest.(check bool) "explicit count accepted" true
    (ok (Server.check_jobs ~flag:"--jobs" 4));
  (match Server.check_jobs ~flag:"--jobs" (-2) with
  | Ok _ -> Alcotest.fail "negative --jobs accepted"
  | Error msg ->
    Alcotest.(check bool) "message names the flag" true
      (String.length msg > 6 && String.sub msg 0 6 = "--jobs"));
  Alcotest.(check bool) "limits with workers 0 validate" true
    (ok
       (Server.validate_limits
          { Server.default_limits with Server.workers = 0 }));
  Alcotest.(check bool) "limits with negative workers rejected" false
    (ok
       (Server.validate_limits
          { Server.default_limits with Server.workers = -1 }))

(* ---- worker pool ---- *)

let test_pool_run_covers_tids () =
  let workers = 4 in
  let seen = Array.init workers (fun _ -> Atomic.make 0) in
  Pool.run ~workers (fun ~tid -> Atomic.incr seen.(tid));
  Array.iteri
    (fun i a ->
      Alcotest.(check int) (Printf.sprintf "tid %d ran once" i) 1
        (Atomic.get a))
    seen;
  (* workers = 1 stays on the calling domain: the scheduler's
     effective_workers semantics depend on it *)
  let self = Domain.self () in
  let inline = ref false in
  Pool.run ~workers:1 (fun ~tid ->
      Alcotest.(check int) "sole tid is 0" 0 tid;
      inline := Domain.self () = self);
  Alcotest.(check bool) "workers=1 runs on the caller" true !inline

let test_pool_spawn_join_tids () =
  let workers = 3 in
  let seen = Array.init (workers + 1) (fun _ -> Atomic.make 0) in
  let pool = Pool.spawn ~workers (fun ~tid -> Atomic.incr seen.(tid)) in
  Alcotest.(check int) "pool size" workers (Pool.size pool);
  Pool.join pool;
  Alcotest.(check int) "tid 0 reserved for the caller" 0
    (Atomic.get seen.(0));
  for i = 1 to workers do
    Alcotest.(check int) (Printf.sprintf "tid %d ran once" i) 1
      (Atomic.get seen.(i))
  done

let test_pool_exception_joins_all () =
  let finished = Array.init 4 (fun _ -> Atomic.make false) in
  match
    Pool.run ~workers:4 (fun ~tid ->
        if tid = 2 then failwith "worker 2 exploded";
        Atomic.set finished.(tid) true)
  with
  | () -> Alcotest.fail "expected the worker exception to propagate"
  | exception Failure msg ->
    Alcotest.(check string) "worker failure surfaces" "worker 2 exploded" msg;
    (* fault isolation: the failure did not abandon the other workers *)
    List.iter
      (fun i ->
        Alcotest.(check bool) (Printf.sprintf "worker %d still joined" i) true
          (Atomic.get finished.(i)))
      [ 0; 1; 3 ]

(* ---- striped cache ---- *)

let hammer_key i =
  Fingerprint.seed ~source:(Printf.sprintf "hammer-src-%d" i) ~entry:"e"
    ~luts:[]

let hammer_artifact i =
  { Cache.art_entry = "e";
    art_vhdl = [ ("k.vhd", Printf.sprintf "-- artifact %d body" i) ];
    art_slices = i;
    art_operator_slices = i + 1;
    art_clock_mhz = 100.0;
    art_latency = i;
    art_latch_bits = 0;
    art_pass_trace = [ "pass" ] }

let test_shard_rounding_and_sums () =
  Alcotest.(check int) "3 rounds up to 4" 4
    (Cache.shard_count (Cache.create ~shards:3 ()));
  Alcotest.(check int) "1 stays 1" 1
    (Cache.shard_count (Cache.create ~shards:1 ()));
  Alcotest.(check int) "capped at 256" 256
    (Cache.shard_count (Cache.create ~shards:1000 ()));
  let auto = Cache.shard_count (Cache.create ()) in
  Alcotest.(check bool) "default is a power of two" true
    (auto > 0 && auto land (auto - 1) = 0);
  (* the per-shard view and the aggregate view agree *)
  let cache = Cache.create ~shards:4 () in
  let n = 32 in
  for i = 0 to n - 1 do
    let k = hammer_key i in
    (match Cache.find cache k with
    | None -> Cache.store cache k (Cache.Artifact (hammer_artifact i))
    | Some _ -> Alcotest.fail "hit before store");
    match Cache.find cache k with
    | Some (Cache.Artifact _, Cache.Memory) -> ()
    | _ -> Alcotest.fail "stored artifact not found"
  done;
  let s = Cache.stats cache in
  let per = Cache.shard_stats cache in
  Alcotest.(check int) "stats and shard_count agree" s.Cache.shards
    (Array.length per);
  let sum f = Array.fold_left (fun acc ss -> acc + f ss) 0 per in
  Alcotest.(check int) "shard hits sum to aggregate" s.Cache.hits
    (sum (fun ss -> ss.Cache.shard_hits));
  Alcotest.(check int) "shard misses sum to aggregate" s.Cache.misses
    (sum (fun ss -> ss.Cache.shard_misses));
  Alcotest.(check int) "shard stores sum to aggregate" s.Cache.stores
    (sum (fun ss -> ss.Cache.shard_stores));
  Alcotest.(check int) "entries sum to key count" n
    (sum (fun ss -> ss.Cache.shard_entries));
  Alcotest.(check int) "lookup accounting is exact" (2 * n)
    (s.Cache.hits + s.Cache.misses)

(* Mixed get/put traffic on overlapping keys from N domains: nothing is
   lost or torn, the hit+miss accounting is exact, and the surviving
   contents match a single-domain run byte for byte. *)
let hammer_run ~domains ~rounds ~nkeys =
  let cache = Cache.create ~shards:8 () in
  let finds = Atomic.make 0 in
  Pool.run ~workers:domains (fun ~tid:_ ->
      for _r = 1 to rounds do
        for i = 0 to nkeys - 1 do
          Atomic.incr finds;
          match Cache.find cache (hammer_key i) with
          | Some (Cache.Artifact a, Cache.Memory) ->
            if a.Cache.art_vhdl <> (hammer_artifact i).Cache.art_vhdl then
              Alcotest.fail "torn or mixed-up artifact"
          | Some _ -> Alcotest.fail "unexpected value under artifact key"
          | None ->
            Cache.store cache (hammer_key i)
              (Cache.Artifact (hammer_artifact i))
        done
      done);
  let final =
    List.init nkeys (fun i ->
        match Cache.find cache (hammer_key i) with
        | Some (Cache.Artifact a, Cache.Memory) -> a.Cache.art_vhdl
        | _ -> Alcotest.fail (Printf.sprintf "artifact %d lost" i))
  in
  cache, Atomic.get finds, final

let test_cache_hammer_across_domains () =
  let rounds = 200 and nkeys = 16 in
  let cache, finds, final = hammer_run ~domains:4 ~rounds ~nkeys in
  let s = Cache.stats cache in
  (* the final-contents readback above also counted nkeys hits *)
  Alcotest.(check int) "every lookup counted exactly once"
    (finds + nkeys)
    (s.Cache.hits + s.Cache.misses);
  Alcotest.(check int) "no disk tier involved" 0 s.Cache.disk_hits;
  Alcotest.(check bool) "stores bounded by lookups" true
    (s.Cache.stores >= nkeys && s.Cache.stores <= s.Cache.misses);
  let _, _, solo = hammer_run ~domains:1 ~rounds ~nkeys in
  Alcotest.(check bool) "contents byte-identical vs single domain" true
    (final = solo)

let test_json_roundtrip () =
  let cases =
    [ {|{"a":1,"b":[true,false,null],"c":"x\"y\\z","d":-2.5}|};
      {|[]|}; {|{}|}; {|"A\n"|}; {|123|}; {|-0.125|};
      "\"\\u0041\""; {|1.5e3|}; {|0.5|} ]
  in
  List.iter
    (fun s ->
      match Json.parse s with
      | Error msg -> Alcotest.fail (s ^ ": " ^ msg)
      | Ok v -> (
        (* printing then reparsing must be a fixpoint *)
        let printed = Json.to_string v in
        match Json.parse printed with
        | Ok v2 ->
          Alcotest.(check string) ("fixpoint of " ^ s) printed
            (Json.to_string v2)
        | Error msg -> Alcotest.fail (printed ^ ": " ^ msg)))
    cases;
  (* a valid \u escape decodes (and survives a print/reparse) *)
  (match Json.parse "\"\\u0041\"" with
  | Ok (Json.Str s) -> Alcotest.(check string) "\\u0041 decodes" "A" s
  | Ok _ -> Alcotest.fail "\\u0041 parsed to a non-string"
  | Error msg -> Alcotest.fail ("\\u0041 rejected: " ^ msg));
  let has_offset msg =
    (* parse errors carry a byte offset: "... at offset N" *)
    let marker = "at offset " in
    let ml = String.length marker and n = String.length msg in
    let rec at i =
      i + ml <= n
      && (String.equal (String.sub msg i ml) marker || at (i + 1))
    in
    at 0
  in
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.fail ("accepted invalid JSON: " ^ s)
      | Error msg ->
        Alcotest.(check bool)
          ("positioned error for " ^ s)
          true (has_offset msg))
    [ "{"; "[1,]"; {|{"a":}|}; "tru"; {|"unterminated|}; "1 2"; "";
      "1."; "-"; ".5"; "1e"; "1.e3"; {|"\u0_41"|}; {|"\u00g1"|} ]

(* Run a scripted serve session in-process: requests go down one pipe,
   responses come back up another, and the returned snapshot is the
   server's own account of what happened. *)
let run_serve_session ?(limits = Server.default_limits) ?cache ?trace lines =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let ic = Unix.in_channel_of_descr req_r in
  let oc = Unix.out_channel_of_descr resp_w in
  let srv = Server.create ?cache ?trace ~limits () in
  let server_domain =
    Domain.spawn (fun () ->
        let snap = Server.serve srv ic oc in
        close_out oc;
        (* responses EOF *)
        snap)
  in
  let wc = Unix.out_channel_of_descr req_w in
  List.iter
    (fun l ->
      output_string wc l;
      output_char wc '\n')
    lines;
  close_out wc;
  let rc = Unix.in_channel_of_descr resp_r in
  let rec read_all acc =
    match input_line rc with
    | line -> read_all (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let responses = read_all [] in
  let snapshot = Domain.join server_domain in
  close_in rc;
  close_in ic;
  responses, snapshot, srv

let parsed_responses lines =
  List.map
    (fun l ->
      match Json.parse l with
      | Ok v -> v
      | Error msg -> Alcotest.fail ("unparseable response " ^ l ^ ": " ^ msg))
    lines

let status_of j =
  match Option.bind (Json.member "status" j) Json.to_string_opt with
  | Some s -> s
  | None -> Alcotest.fail ("response without status: " ^ Json.to_string j)

let id_of j = Option.value (Json.member "id" j) ~default:Json.Null

let find_by_id id resps =
  match List.find_opt (fun j -> id_of j = Json.Str id) resps with
  | Some j -> j
  | None -> Alcotest.fail ("no response with id " ^ id)

let tiny_kernel c =
  Printf.sprintf
    "void k(int A[8], int B[8]) { int i; for (i = 0; i < 8; i = i + 1) { \
     B[i] = A[i] * %d + 1; } }"
    c

let compile_request ?(extra = "") ~id c =
  Printf.sprintf {|{"id":%S,"source":%S,"entry":"k"%s}|} id (tiny_kernel c)
    extra

let test_serve_protocol_roundtrip () =
  let lines =
    [ compile_request ~id:"c1" 3;
      {|{"id":"h1","type":"health","drain":true}|};
      {|{"id":"c2","source":"void k(int A[4]) { A[0] = }","entry":"k"}|};
      "{not json";
      {|{"id":"u1","type":"frobnicate"}|};
      compile_request ~id:"c3" 3 (* same source: cache space, still ok *) ]
  in
  let responses, snapshot, _ = run_serve_session lines in
  Alcotest.(check int) "one response per request" (List.length lines)
    (List.length responses);
  let resps = parsed_responses responses in
  let c1 = find_by_id "c1" resps in
  Alcotest.(check string) "compile ok" "ok" (status_of c1);
  Alcotest.(check (option int)) "slices reported" (Some 67)
    (Option.bind (Json.member "slices" c1) Json.to_int_opt);
  let h1 = find_by_id "h1" resps in
  Alcotest.(check string) "health ok" "ok" (status_of h1);
  (* drain:true means the health snapshot already saw c1 finish *)
  let health = Option.get (Json.member "health" h1) in
  let requests = Option.get (Json.member "requests" health) in
  Alcotest.(check (option int)) "health saw c1 complete" (Some 1)
    (Option.bind (Json.member "ok" requests) Json.to_int_opt);
  let c2 = find_by_id "c2" resps in
  Alcotest.(check string) "compile error is structured" "error"
    (status_of c2);
  Alcotest.(check (option string)) "compile error kind" (Some "compile")
    (Option.bind (Json.member "kind" c2) Json.to_string_opt);
  let malformed =
    List.find_opt
      (fun j ->
        id_of j = Json.Null && status_of j = "error"
        && Option.bind (Json.member "kind" j) Json.to_string_opt
           = Some "bad_request")
      resps
  in
  Alcotest.(check bool) "malformed line answered" true (malformed <> None);
  let u1 = find_by_id "u1" resps in
  Alcotest.(check (option string)) "unknown type rejected"
    (Some "bad_request")
    (Option.bind (Json.member "kind" u1) Json.to_string_opt);
  Alcotest.(check string) "repeat compile ok" "ok"
    (status_of (find_by_id "c3" resps));
  Alcotest.(check int) "snapshot received" (List.length lines)
    snapshot.Metrics.s_received;
  Alcotest.(check int) "snapshot ok" 2 snapshot.Metrics.s_ok;
  Alcotest.(check int) "snapshot bad_request" 2 snapshot.Metrics.s_bad_request

let test_serve_oversized_request () =
  let limits = { Server.default_limits with Server.max_request_bytes = 64 } in
  let big = compile_request ~id:"big" 7 in
  Alcotest.(check bool) "request really oversized" true
    (String.length big > 64);
  let responses, snapshot, _ =
    run_serve_session ~limits [ big; {|{"id":"h","type":"health"}|} ]
  in
  let resps = parsed_responses responses in
  (match resps with
  | first :: _ ->
    Alcotest.(check string) "oversized rejected" "error" (status_of first);
    Alcotest.(check (option string)) "as bad_request" (Some "bad_request")
      (Option.bind (Json.member "kind" first) Json.to_string_opt)
  | [] -> Alcotest.fail "no responses");
  Alcotest.(check int) "both answered" 2 (List.length resps);
  Alcotest.(check int) "counted" 1 snapshot.Metrics.s_bad_request

let test_serve_deadline_exceeded () =
  (* a deadline far below compile time must come back structured, not
     hang or crash; unique sources defeat the cache *)
  let lines =
    List.init 4 (fun i ->
        compile_request
          ~id:(Printf.sprintf "d%d" i)
          ~extra:{|,"deadline_ms":0.0001|} (100 + i))
  in
  let responses, snapshot, _ = run_serve_session lines in
  let resps = parsed_responses responses in
  Alcotest.(check int) "all answered" 4 (List.length resps);
  List.iter
    (fun j ->
      Alcotest.(check string) "deadline status" "deadline_exceeded"
        (status_of j))
    resps;
  Alcotest.(check int) "snapshot deadline count" 4 snapshot.Metrics.s_deadline

let test_serve_sheds_when_overloaded () =
  let limits =
    { Server.default_limits with Server.workers = 1; queue_depth = 1 }
  in
  (* distinct sources so no request is a fast cache hit; admission far
     outpaces one worker, so the depth-1 queue must shed *)
  let n = 16 in
  let lines =
    List.init n (fun i -> compile_request ~id:(Printf.sprintf "s%d" i) i)
  in
  let responses, snapshot, _ = run_serve_session ~limits lines in
  let resps = parsed_responses responses in
  Alcotest.(check int) "every request answered" n (List.length resps);
  List.iter
    (fun j ->
      match status_of j with
      | "ok" | "overloaded" -> ()
      | s -> Alcotest.fail ("unexpected status " ^ s))
    resps;
  Alcotest.(check bool) "at least one shed" true (snapshot.Metrics.s_shed >= 1);
  Alcotest.(check int) "ok + shed = received" snapshot.Metrics.s_received
    (snapshot.Metrics.s_ok + snapshot.Metrics.s_shed)

let test_serve_fault_soak () =
  (* 64 mixed requests under fault injection at every point: every
     request gets a structured response, nothing crashes or hangs, and
     the final drained health snapshot is self-consistent. *)
  let dir = fresh_tmp_dir "roccc_soak" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      with_faults
        "cache_read:0.5,cache_write:0.5,scheduler_claim:0.2,driver_pass:0.02"
        (fun () ->
          let lines =
            List.init 63 (fun i ->
                match i mod 8 with
                | 6 ->
                  Printf.sprintf
                    {|{"id":"bad%d","source":"void k(int A[4]) { A[0] = }","entry":"k"}|}
                    i
                | 7 when i mod 16 = 7 -> "{malformed"
                | 7 ->
                  compile_request
                    ~id:(Printf.sprintf "dl%d" i)
                    ~extra:{|,"deadline_ms":0.0001|} (1000 + i)
                | _ -> compile_request ~id:(Printf.sprintf "q%d" i) (i mod 5))
            @ [ {|{"id":"final","type":"health","drain":true}|} ]
          in
          let limits = { Server.default_limits with Server.workers = 2 } in
          let cache = Cache.create ~disk_dir:dir () in
          let responses, snapshot, _ =
            run_serve_session ~limits ~cache lines
          in
          let resps = parsed_responses responses in
          Alcotest.(check int) "64 structured responses" 64
            (List.length resps);
          List.iter
            (fun j ->
              match status_of j with
              | "ok" | "error" | "overloaded" | "deadline_exceeded" -> ()
              | s -> Alcotest.fail ("unexpected status " ^ s))
            resps;
          (* errors must be typed *)
          List.iter
            (fun j ->
              if status_of j = "error" then
                match
                  Option.bind (Json.member "kind" j) Json.to_string_opt
                with
                | Some ("bad_request" | "compile" | "injected_fault") -> ()
                | Some k -> Alcotest.fail ("unexpected error kind " ^ k)
                | None -> Alcotest.fail "untyped error response")
            resps;
          (* the snapshot partitions every received request *)
          Alcotest.(check int) "received = all lines" 64
            snapshot.Metrics.s_received;
          Alcotest.(check int) "outcomes partition received"
            snapshot.Metrics.s_received
            (snapshot.Metrics.s_ok + snapshot.Metrics.s_failed
            + snapshot.Metrics.s_shed + snapshot.Metrics.s_deadline
            + snapshot.Metrics.s_bad_request + snapshot.Metrics.s_health);
          Alcotest.(check bool) "some requests succeeded" true
            (snapshot.Metrics.s_ok > 0);
          (* every named fault point was exercised and fired *)
          let counts = Faults.counts () in
          List.iter
            (fun point ->
              match
                List.find_opt (fun (p, _, _) -> p = point) counts
              with
              | Some (_, calls, fired) ->
                Alcotest.(check bool) (point ^ " called") true (calls > 0);
                Alcotest.(check bool) (point ^ " fired") true (fired > 0)
              | None -> Alcotest.fail ("no counts for point " ^ point))
            Faults.known_points;
          (* the drained final health response agrees with the snapshot *)
          let final = find_by_id "final" resps in
          let health = Option.get (Json.member "health" final) in
          let requests = Option.get (Json.member "requests" health) in
          Alcotest.(check (option int)) "health ok total"
            (Some snapshot.Metrics.s_ok)
            (Option.bind (Json.member "ok" requests) Json.to_int_opt)))

let test_health_reports_farm () =
  let limits = { Server.default_limits with Server.workers = 2 } in
  let cache = Cache.create ~shards:4 () in
  let lines =
    [ compile_request ~id:"c1" 3; {|{"id":"h1","type":"health"}|} ]
  in
  let resps, _, _ = run_serve_session ~limits ~cache lines in
  let resps = parsed_responses resps in
  let h = find_by_id "h1" resps in
  let health = Option.get (Json.member "health" h) in
  let workers = Option.get (Json.member "workers" health) in
  Alcotest.(check (option int)) "configured workers" (Some 2)
    (Option.bind (Json.member "configured" workers) Json.to_int_opt);
  Alcotest.(check (option int)) "effective workers" (Some 2)
    (Option.bind (Json.member "effective" workers) Json.to_int_opt);
  (match Json.member "requests" workers with
  | Some (Json.Arr l) ->
    Alcotest.(check int) "a request slot per worker plus admission" 3
      (List.length l)
  | _ -> Alcotest.fail "workers.requests missing");
  let cache_j = Option.get (Json.member "cache" health) in
  Alcotest.(check (option int)) "shard_count" (Some 4)
    (Option.bind (Json.member "shard_count" cache_j) Json.to_int_opt);
  match Json.member "shards" cache_j with
  | Some (Json.Arr l) ->
    Alcotest.(check int) "one stats object per shard" 4 (List.length l)
  | _ -> Alcotest.fail "cache.shards missing"

let test_pass_cancellation_hook () =
  (* the cooperative cancel hook fires at a pass boundary, and an
     un-cancelled run is unaffected *)
  let polls = ref 0 in
  let cancelling =
    { (Pass.default_config ()) with
      Pass.cancel =
        Some
          (fun () ->
            incr polls;
            if !polls > 3 then Some "test says stop" else None) }
  in
  (match Driver.compile ~config:cancelling ~entry:"fir" fir_source with
  | _ -> Alcotest.fail "expected cancellation"
  | exception Pass.Cancelled reason ->
    Alcotest.(check string) "reason" "test says stop" reason);
  let benign =
    { (Pass.default_config ()) with Pass.cancel = Some (fun () -> None) }
  in
  match Driver.compile ~config:benign ~entry:"fir" fir_source with
  | _ -> ()
  | exception _ -> Alcotest.fail "benign cancel hook broke compilation"

module Farm = Roccc_service.Farm

(* ------------------------------------------------------------------ *)
(* Single-flight deduplication                                         *)
(* ------------------------------------------------------------------ *)

let test_single_flight_dedup () =
  (* K concurrent identical compiles must execute the mid-end exactly
     once: one leader runs the passes while every follower blocks on the
     flight and shares the artifact. Verified three ways: the instrument
     hook counts executed passes, Cache.stats counts flights, and the
     trace carries one zero-duration "coalesced" span per follower. *)
  let k = 6 in
  let job =
    { Service.label = "flight";
      source = tiny_kernel 11;
      entry = "k";
      options = Driver.default_options;
      luts = [] }
  in
  (* baseline: executed-pass count of one cold compile *)
  let baseline = ref 0 in
  let base_cfg =
    { (Pass.default_config ()) with
      Pass.instrument = Some (fun _ -> incr baseline) }
  in
  ignore (Service.compile_cached ~cache:(Cache.create ()) ~config:base_cfg job);
  Alcotest.(check bool) "baseline executes passes" true (!baseline > 0);
  let cache = Cache.create () in
  let trace = Trace.create () in
  let executed = Atomic.make 0 in
  let gated = Atomic.make false in
  (* the leader's first pass blocks until every follower has registered
     as coalesced, so the "all concurrent" interleaving is forced, not
     hoped for *)
  let gate () =
    if Atomic.compare_and_set gated false true then begin
      let deadline = Unix.gettimeofday () +. 5.0 in
      while
        (Cache.stats cache).Cache.coalesced < k - 1
        && Unix.gettimeofday () < deadline
      do
        Domain.cpu_relax ()
      done
    end
  in
  let config =
    { (Pass.default_config ()) with
      Pass.instrument =
        Some
          (fun _ ->
            gate ();
            Atomic.incr executed) }
  in
  let ready = Atomic.make 0 in
  let go = Atomic.make false in
  let domains =
    List.init k (fun _ ->
        Domain.spawn (fun () ->
            Atomic.incr ready;
            while not (Atomic.get go) do
              Domain.cpu_relax ()
            done;
            Service.compile_cached ~cache ~config ~trace job))
  in
  while Atomic.get ready < k do
    Domain.cpu_relax ()
  done;
  Atomic.set go true;
  let results = List.map Domain.join domains in
  Alcotest.(check int) "mid-end executed exactly once" !baseline
    (Atomic.get executed);
  let st = Cache.stats cache in
  Alcotest.(check int) "one flight" 1 st.Cache.flights;
  Alcotest.(check int) "every follower coalesced" (k - 1) st.Cache.coalesced;
  let origins = List.map (fun r -> r.Service.r_origin) results in
  Alcotest.(check int) "one cold leader" 1
    (List.length (List.filter (( = ) Service.Cold) origins));
  Alcotest.(check int) "followers coalesced" (k - 1)
    (List.length (List.filter (( = ) Service.Coalesced) origins));
  (* every result shares the leader's bytes *)
  let vhdls = List.map (fun r -> r.Service.r_vhdl) results in
  List.iter
    (fun v -> Alcotest.(check bool) "byte-identical artifact" true
        (v = List.hd vhdls))
    vhdls;
  let coalesced_spans =
    List.filter
      (fun (sp : Trace.span) -> sp.Trace.sp_name = "coalesced")
      (Trace.spans trace)
  in
  Alcotest.(check int) "one coalesced span per follower" (k - 1)
    (List.length coalesced_spans);
  List.iter
    (fun (sp : Trace.span) ->
      Alcotest.(check (float 0.0)) "zero duration" 0.0 sp.Trace.sp_dur_s)
    coalesced_spans

(* ------------------------------------------------------------------ *)
(* Multi-process-safe tmp sweeping                                     *)
(* ------------------------------------------------------------------ *)

let test_tmp_sweep_respects_live_pids () =
  let dir = fresh_tmp_dir "roccc_sweep" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let touch ?(age_s = 0.0) name =
        let path = Filename.concat dir name in
        let oc = open_out path in
        output_string oc "partial artifact";
        close_out oc;
        if age_s > 0.0 then begin
          let t = Unix.gettimeofday () -. age_s in
          Unix.utimes path t t
        end;
        path
      in
      let dead_fresh = touch "a.art.tmp.111" in
      let live_fresh = touch "b.art.tmp.222" in
      let live_old = touch ~age_s:3600.0 "c.art.tmp.222" in
      let junk_fresh = touch "d.art.tmp.notapid" in
      let junk_old = touch ~age_s:3600.0 "e.art.tmp.notapid" in
      let artifact = touch "f.art" in
      (* pid 222 is "alive", everything else is dead *)
      let removed =
        Cache.sweep_stale_tmp ~max_age_s:600.0
          ~pid_alive:(fun pid -> pid = 222)
          dir
      in
      (* removed: dead_fresh (dead pid), live_old (over age), junk_old
         (unparseable pid falls back to the age rule) *)
      Alcotest.(check int) "three stale files removed" 3 removed;
      Alcotest.(check bool) "dead pid swept even when fresh" false
        (Sys.file_exists dead_fresh);
      Alcotest.(check bool) "live sibling's in-flight write kept" true
        (Sys.file_exists live_fresh);
      Alcotest.(check bool) "live but ancient write swept" false
        (Sys.file_exists live_old);
      Alcotest.(check bool) "unparseable fresh tmp kept" true
        (Sys.file_exists junk_fresh);
      Alcotest.(check bool) "unparseable old tmp swept" false
        (Sys.file_exists junk_old);
      Alcotest.(check bool) "finished artifacts untouched" true
        (Sys.file_exists artifact))

(* ------------------------------------------------------------------ *)
(* Concurrent socket connections                                       *)
(* ------------------------------------------------------------------ *)

let with_serve_socket ?(limits = Server.default_limits) ?cache f =
  let dir = fresh_tmp_dir "roccc_sock" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let path = Filename.concat dir "sv.sock" in
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 16;
      let srv = Server.create ?cache ~limits () in
      let server =
        Domain.spawn (fun () -> Server.serve_socket ~poll_interval_s:0.01 srv sock)
      in
      let out = f path srv in
      Server.request_stop srv;
      let snapshot = Domain.join server in
      (try Unix.close sock with Unix.Unix_error _ -> ());
      out, snapshot)

let connect_client path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd

let rpc oc ic line =
  output_string oc line;
  output_char oc '\n';
  flush oc;
  input_line ic

let test_serve_socket_concurrent_clients () =
  let limits = { Server.default_limits with Server.workers = 2 } in
  let reqs_per_client = 4 in
  let (by_client, shutdown_resp), snapshot =
    with_serve_socket ~limits (fun path _srv ->
        (* two clients compile the same sources concurrently over their
           own connections, each in lock-step (send, await reply) so the
           two request streams interleave on the shared queue *)
        let client tag =
          let fd, ic, oc = connect_client path in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              List.init reqs_per_client (fun i ->
                  let id = Printf.sprintf "%s%d" tag i in
                  let line =
                    Printf.sprintf
                      {|{"id":%S,"source":%S,"entry":"k","return_vhdl":true}|}
                      id (tiny_kernel i)
                  in
                  rpc oc ic line))
        in
        let a = Domain.spawn (fun () -> client "a") in
        let b = Domain.spawn (fun () -> client "b") in
        let a_resps = Domain.join a in
        let b_resps = Domain.join b in
        (* a third connection shuts the server down through the protocol *)
        let fd, ic, oc = connect_client path in
        let shutdown = rpc oc ic {|{"id":"s","type":"shutdown"}|} in
        (try Unix.close fd with Unix.Unix_error _ -> ());
        [ "a", a_resps; "b", b_resps ], shutdown)
  in
  let parsed =
    List.map (fun (tag, lines) -> tag, parsed_responses lines) by_client
  in
  (* responses routed to the connection that asked, in its own order *)
  List.iter
    (fun (tag, resps) ->
      List.iteri
        (fun i j ->
          Alcotest.(check bool)
            (Printf.sprintf "%s%d routed" tag i)
            true
            (id_of j = Json.Str (Printf.sprintf "%s%d" tag i));
          Alcotest.(check string) "ok" "ok" (status_of j))
        resps)
    parsed;
  (* the two clients compiled identical sources: the returned VHDL must
     be byte-identical request-for-request across connections *)
  let vhdl tag i =
    let resps = List.assoc tag parsed in
    match Json.member "vhdl" (List.nth resps i) with
    | Some v -> Json.to_string v
    | None -> Alcotest.fail "response without vhdl"
  in
  for i = 0 to reqs_per_client - 1 do
    Alcotest.(check string) "byte-identical across connections" (vhdl "a" i)
      (vhdl "b" i)
  done;
  (match Json.parse shutdown_resp with
  | Ok j -> Alcotest.(check string) "shutdown acknowledged" "ok" (status_of j)
  | Error msg -> Alcotest.fail ("bad shutdown response: " ^ msg));
  Alcotest.(check int) "three connections accepted" 3 snapshot.Metrics.s_conns;
  Alcotest.(check int) "every compile answered ok" (2 * reqs_per_client)
    snapshot.Metrics.s_ok

let test_serve_socket_eof_isolated () =
  (* EOF on one connection must not stall another: client A connects,
     works, disconnects; client B (opened before A's EOF) keeps getting
     answers afterwards. *)
  let (before_eof, after_eof), _snapshot =
    with_serve_socket (fun path _srv ->
        let fd_b, ic_b, oc_b = connect_client path in
        let fd_a, ic_a, oc_a = connect_client path in
        let r_a = rpc oc_a ic_a (compile_request ~id:"a0" 1) in
        let before = rpc oc_b ic_b (compile_request ~id:"b0" 2) in
        ignore r_a;
        (try Unix.close fd_a with Unix.Unix_error _ -> ());
        (* B still lives after A's EOF *)
        let after = rpc oc_b ic_b (compile_request ~id:"b1" 3) in
        (try Unix.close fd_b with Unix.Unix_error _ -> ());
        before, after)
  in
  List.iter
    (fun (line, id) ->
      match Json.parse line with
      | Ok j ->
        Alcotest.(check bool) (id ^ " routed") true (id_of j = Json.Str id);
        Alcotest.(check string) (id ^ " ok") "ok" (status_of j)
      | Error msg -> Alcotest.fail ("bad response: " ^ msg))
    [ before_eof, "b0"; after_eof, "b1" ]

(* ------------------------------------------------------------------ *)
(* The farm supervisor                                                 *)
(* ------------------------------------------------------------------ *)

let test_farm_restarts_killed_child () =
  (* The supervisor must be exercised as a real process: OCaml 5 forbids
     Unix.fork in any process that ever created a domain, and the test
     binary spawns domains freely — so drive the installed `roccc farm`
     binary end-to-end instead. *)
  let roccc =
    Filename.concat
      (Filename.concat
         (Filename.dirname (Filename.dirname Sys.executable_name))
         "bin")
      "roccc.exe"
  in
  Alcotest.(check bool) "roccc binary built" true (Sys.file_exists roccc);
  let dir = fresh_tmp_dir "roccc_farm" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let sock_path = Filename.concat dir "fm.sock" in
      let state_dir = Filename.concat dir "st" in
      let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
      let log =
        Unix.openfile
          (Filename.concat dir "farm.log")
          [ Unix.O_WRONLY; Unix.O_CREAT ]
          0o644
      in
      let sup =
        Unix.create_process roccc
          [| "roccc"; "farm"; "--socket"; sock_path; "--procs"; "2";
             "--state-dir"; state_dir; "-j"; "1" |]
          null null log
      in
      Unix.close null;
      Unix.close log;
      let sup_done = ref None in
      let finally () =
        if !sup_done = None then begin
          (try Unix.kill sup Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] sup)
        end
      in
      Fun.protect ~finally (fun () ->
          let farm_json () =
            match open_in (Farm.farm_file state_dir) with
            | exception Sys_error _ -> None
            | ic ->
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () ->
                  match input_line ic with
                  | line -> Result.to_option (Json.parse line)
                  | exception End_of_file -> None)
          in
          let child_pid index =
            Option.bind (farm_json ()) (fun j ->
                match Json.member "children" j with
                | Some (Json.Arr kids) ->
                  Option.bind (List.nth_opt kids index) (fun kid ->
                      Option.bind (Json.member "pid" kid) Json.to_int_opt)
                | _ -> None)
          in
          let await ?(timeout_s = 30.0) what cond =
            let deadline = Unix.gettimeofday () +. timeout_s in
            let rec poll () =
              match cond () with
              | Some v -> v
              | None ->
                if Unix.gettimeofday () > deadline then
                  Alcotest.fail ("timed out waiting for " ^ what)
                else begin
                  Unix.sleepf 0.02;
                  poll ()
                end
            in
            poll ()
          in
          let pid0 =
            await "farm to come up" (fun () ->
                if Sys.file_exists sock_path then child_pid 0 else None)
          in
          (* hard-kill child 0; the supervisor must fork a replacement *)
          Unix.kill pid0 Sys.sigkill;
          let pid0' =
            await "restart" (fun () ->
                match child_pid 0 with
                | Some p when p <> pid0 && p <> 0 -> Some p
                | _ -> None)
          in
          Alcotest.(check bool) "replacement is a new pid" true
            (pid0' <> pid0);
          (* the restarted farm still serves: compile, then shut down
             through the protocol; a clean child exit must bring the
             whole farm down *)
          let fd, ic, oc = connect_client sock_path in
          let compiled = rpc oc ic (compile_request ~id:"after" 5) in
          (match Json.parse compiled with
          | Ok j -> Alcotest.(check string) "farm serves after restart" "ok"
              (status_of j)
          | Error msg -> Alcotest.fail ("bad response: " ^ msg));
          let shutdown = rpc oc ic {|{"id":"s","type":"shutdown"}|} in
          (match Json.parse shutdown with
          | Ok j -> Alcotest.(check string) "shutdown ok" "ok" (status_of j)
          | Error msg -> Alcotest.fail ("bad response: " ^ msg));
          (try Unix.close fd with Unix.Unix_error _ -> ());
          let status =
            await "supervisor exit" (fun () ->
                match Unix.waitpid [ Unix.WNOHANG ] sup with
                | 0, _ -> None
                | _, st -> Some st
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> None)
          in
          sup_done := Some status;
          (match status with
          | Unix.WEXITED 0 -> ()
          | st ->
            Alcotest.fail
              (Printf.sprintf "supervisor did not exit cleanly: %s"
                 (match st with
                 | Unix.WEXITED n -> Printf.sprintf "exit %d" n
                 | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
                 | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n)));
          (* the final pid table records the restart *)
          match farm_json () with
          | None -> Alcotest.fail "farm.json missing after shutdown"
          | Some j -> (
            match Json.member "children" j with
            | Some (Json.Arr kids) ->
              let restarts =
                List.fold_left
                  (fun acc kid ->
                    acc
                    + Option.value ~default:0
                        (Option.bind (Json.member "restarts" kid)
                           Json.to_int_opt))
                  0 kids
              in
              Alcotest.(check int) "one restart recorded" 1 restarts
            | _ -> Alcotest.fail "farm.json has no children")))

let test_farm_aggregate_health () =
  let dir = fresh_tmp_dir "roccc_agg" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let write name contents =
        let oc = open_out (Filename.concat dir name) in
        output_string oc (contents ^ "\n");
        close_out oc
      in
      write "child-0.json"
        {|{"pid":10,"requests":{"ok":3,"failed":1},"workers":[1,2]}|};
      write "child-1.json"
        {|{"pid":20,"requests":{"ok":4,"failed":0},"workers":[3,4]}|};
      write "not-a-child.txt" "ignored";
      let agg = Farm.aggregate_health ~state_dir:dir in
      Alcotest.(check (option int)) "both snapshots found" (Some 2)
        (Option.bind (Json.member "children_reporting" agg) Json.to_int_opt);
      let a = Option.get (Json.member "aggregate" agg) in
      let reqs = Option.get (Json.member "requests" a) in
      Alcotest.(check (option int)) "ok summed" (Some 7)
        (Option.bind (Json.member "ok" reqs) Json.to_int_opt);
      Alcotest.(check (option int)) "failed summed" (Some 1)
        (Option.bind (Json.member "failed" reqs) Json.to_int_opt);
      match Json.member "workers" a with
      | Some (Json.Arr [ x; y ]) ->
        Alcotest.(check (option int)) "arrays merge element-wise" (Some 4)
          (Json.to_int_opt x);
        Alcotest.(check (option int)) "second element" (Some 6)
          (Json.to_int_opt y)
      | _ -> Alcotest.fail "aggregate workers not a 2-array")

let suites =
  [ "service",
    [ Alcotest.test_case "cache hit on identical job" `Quick
        test_cache_hit_identical;
      Alcotest.test_case "cache miss on option change" `Quick
        test_cache_miss_on_option_change;
      Alcotest.test_case "option fingerprints" `Quick
        test_option_fingerprints;
      Alcotest.test_case "artifact key sees pass selection" `Quick
        test_artifact_key_sees_pass_selection;
      Alcotest.test_case "disk cache survives a restart" `Quick
        test_disk_cache_survives_process;
      Alcotest.test_case "batch isolates a failing kernel" `Quick
        test_batch_isolates_failure;
      Alcotest.test_case "parallel VHDL = sequential VHDL" `Slow
        test_parallel_matches_sequential;
      Alcotest.test_case "warm batch reports hits and is faster" `Slow
        test_warm_batch_faster_with_hits;
      Alcotest.test_case "sweep grid reuses the front end" `Quick
        test_sweep_grid;
      Alcotest.test_case "sweep hits the cache for every mid-end pass" `Quick
        test_sweep_per_pass_cache_hits;
      Alcotest.test_case "scheduler slots are deterministic" `Quick
        test_scheduler_deterministic_slots;
      Alcotest.test_case "effective worker clamping" `Quick
        test_effective_workers;
      Alcotest.test_case "chunked claiming edge cases" `Quick
        test_scheduler_chunk_edge_cases;
      Alcotest.test_case "no negative scaling past core count" `Slow
        test_scheduler_scaling_guard;
      Alcotest.test_case "batch report carries worker count" `Quick
        test_run_batch_reports_workers;
      Alcotest.test_case "trace exports chrome JSON" `Quick
        test_trace_export;
      Alcotest.test_case "driver instrument hook" `Quick
        test_driver_instrument_hook;
      Alcotest.test_case "typed vm error" `Quick test_vm_error_typed;
      Alcotest.test_case "interp div-by-zero is a driver error" `Quick
        test_interp_div_zero_is_driver_error ];
    "service.resilience",
    [ Alcotest.test_case "fault spec parsing" `Quick test_faults_parse;
      Alcotest.test_case "fault accumulator is deterministic" `Quick
        test_faults_deterministic_accumulator;
      Alcotest.test_case "cache sweeps stranded tmp files" `Quick
        test_cache_sweeps_stranded_tmp;
      Alcotest.test_case "cache write fault degrades, never raises" `Quick
        test_cache_write_fault_degrades;
      Alcotest.test_case "cache read fault recovered by retry" `Quick
        test_cache_read_fault_retries_through;
      Alcotest.test_case "CLI flag validators" `Quick test_flag_validators;
      Alcotest.test_case "--jobs 0 means auto" `Quick test_check_jobs_auto;
      Alcotest.test_case "json round-trip and rejection" `Quick
        test_json_roundtrip;
      Alcotest.test_case "pass-boundary cancellation hook" `Quick
        test_pass_cancellation_hook ];
    "service.farm",
    [ Alcotest.test_case "pool run covers every tid" `Quick
        test_pool_run_covers_tids;
      Alcotest.test_case "pool spawn/join tids" `Quick
        test_pool_spawn_join_tids;
      Alcotest.test_case "pool joins all workers on failure" `Quick
        test_pool_exception_joins_all;
      Alcotest.test_case "shard rounding and per-shard sums" `Quick
        test_shard_rounding_and_sums;
      Alcotest.test_case "N-domain cache hammer" `Slow
        test_cache_hammer_across_domains;
      Alcotest.test_case "health reports the farm" `Quick
        test_health_reports_farm;
      Alcotest.test_case "single-flight dedup executes once" `Quick
        test_single_flight_dedup;
      Alcotest.test_case "tmp sweep respects live pids" `Quick
        test_tmp_sweep_respects_live_pids;
      Alcotest.test_case "supervisor restarts a killed child" `Quick
        test_farm_restarts_killed_child;
      Alcotest.test_case "aggregate health sums children" `Quick
        test_farm_aggregate_health ];
    "service.serve",
    [ Alcotest.test_case "protocol round-trip" `Quick
        test_serve_protocol_roundtrip;
      Alcotest.test_case "oversized request rejected" `Quick
        test_serve_oversized_request;
      Alcotest.test_case "deadline exceeded is structured" `Quick
        test_serve_deadline_exceeded;
      Alcotest.test_case "bounded queue sheds under overload" `Quick
        test_serve_sheds_when_overloaded;
      Alcotest.test_case "64-request fault-injected soak" `Slow
        test_serve_fault_soak;
      Alcotest.test_case "concurrent socket clients" `Quick
        test_serve_socket_concurrent_clients;
      Alcotest.test_case "EOF on one connection spares the rest" `Quick
        test_serve_socket_eof_isolated ] ]
