(* Tests for the Pareto autotuner (lib/tune): the dominance relations,
   front extraction, objective parsing, pruning correctness against an
   exhaustive search, determinism across worker counts, mid-end cache
   reuse across candidates, and the CLI's sweep-axis validators. *)

module Driver = Roccc_core.Driver
module Service = Roccc_service.Service
module Server = Roccc_service.Server
module Cache = Roccc_service.Cache
module Trace = Roccc_service.Trace
module Pareto = Roccc_tune.Pareto
module Objective = Roccc_tune.Objective
module Search = Roccc_tune.Search

(* trip count 16 so unroll 2 and 4 divide it *)
let fir16_source =
  "void fir(int A[20], int C[16]) {\n\
  \  int i;\n\
  \  for (i = 0; i < 16; i = i + 1) {\n\
  \    C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];\n\
  \  }\n\
   }\n"

let m s c l = { Pareto.p_slices = s; p_clock_mhz = c; p_latch_bits = l }

(* ---- dominance ---- *)

let test_dominates () =
  Alcotest.(check bool) "better on all axes" true
    (Pareto.dominates (m 100 50.0 10) (m 200 40.0 20));
  Alcotest.(check bool) "reverse direction" false
    (Pareto.dominates (m 200 40.0 20) (m 100 50.0 10));
  Alcotest.(check bool) "equal points never dominate" false
    (Pareto.dominates (m 100 50.0 10) (m 100 50.0 10));
  Alcotest.(check bool) "equal but one axis strictly better" true
    (Pareto.dominates (m 100 50.0 9) (m 100 50.0 10));
  Alcotest.(check bool) "trade-off is incomparable" false
    (Pareto.dominates (m 100 40.0 10) (m 200 50.0 20))

let test_margin_dominates () =
  let margin = 0.5 in
  Alcotest.(check bool) "beats by 1.5x on every axis" true
    (Pareto.margin_dominates ~margin (m 100 90.0 10) (m 200 50.0 20));
  Alcotest.(check bool) "clock margin too thin" false
    (Pareto.margin_dominates ~margin (m 100 70.0 10) (m 200 50.0 20));
  Alcotest.(check bool) "slice margin too thin" false
    (Pareto.margin_dominates ~margin (m 150 90.0 10) (m 200 50.0 20));
  Alcotest.(check bool) "zero latch bits on both sides is fine" true
    (Pareto.margin_dominates ~margin (m 100 90.0 0) (m 200 50.0 0));
  Alcotest.(check bool) "plain dominance is not enough" false
    (Pareto.margin_dominates ~margin (m 199 51.0 19) (m 200 50.0 20))

let test_front () =
  let pts =
    [ ("a", m 100 50.0 10);  (* front *)
      ("b", m 200 40.0 20);  (* dominated by a *)
      ("c", m 50 30.0 5);    (* front: fewer slices than a *)
      ("d", m 100 50.0 10);  (* duplicate of a: kept *)
      ("e", m 300 60.0 30) ] (* front: fastest clock *)
  in
  let front = Pareto.front pts in
  Alcotest.(check (list string)) "front members, input order"
    [ "a"; "c"; "d"; "e" ]
    (List.map fst front);
  (* no element of the front is dominated by any input point *)
  List.iter
    (fun (_, fm) ->
      Alcotest.(check bool) "front point undominated" false
        (List.exists (fun (_, pm) -> Pareto.dominates pm fm) pts))
    front

(* ---- objectives ---- *)

let test_objective_parse () =
  let ok = function Ok v -> v | Error e -> Alcotest.fail e in
  (match ok (Objective.parse ~name:"max-mhz" ~slice_budget:(Some 400) ~target_mhz:None) with
  | Objective.Max_mhz { slice_budget } ->
    Alcotest.(check int) "budget" 400 slice_budget
  | _ -> Alcotest.fail "expected Max_mhz");
  (match ok (Objective.parse ~name:"max-mhz" ~slice_budget:None ~target_mhz:None) with
  | Objective.Max_mhz { slice_budget } ->
    Alcotest.(check int) "default budget is the whole device"
      Roccc_fpga.Area.xc2v2000_slices slice_budget
  | _ -> Alcotest.fail "expected Max_mhz");
  let is_err = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "unknown objective" true
    (is_err (Objective.parse ~name:"min-watts" ~slice_budget:None ~target_mhz:None));
  Alcotest.(check bool) "target-mhz rejected for max-mhz" true
    (is_err (Objective.parse ~name:"max-mhz" ~slice_budget:None ~target_mhz:(Some 100.0)));
  Alcotest.(check bool) "slice-budget rejected for min-slices" true
    (is_err (Objective.parse ~name:"min-slices" ~slice_budget:(Some 400) ~target_mhz:None));
  Alcotest.(check bool) "non-positive budget rejected" true
    (is_err (Objective.parse ~name:"max-mhz" ~slice_budget:(Some 0) ~target_mhz:None))

let test_objective_feasible_fitness () =
  let obj = Objective.Max_mhz { slice_budget = 150 } in
  Alcotest.(check bool) "within budget" true (Objective.feasible obj (m 150 50.0 10));
  Alcotest.(check bool) "over budget" false (Objective.feasible obj (m 151 50.0 10));
  Alcotest.(check bool) "fitness prefers faster clock" true
    (Objective.fitness obj (m 100 60.0 10) > Objective.fitness obj (m 100 50.0 10));
  let obj = Objective.Min_slices { target_mhz = 80.0 } in
  Alcotest.(check bool) "clock at target" true (Objective.feasible obj (m 100 80.0 10));
  Alcotest.(check bool) "clock below target" false (Objective.feasible obj (m 100 79.9 10));
  Alcotest.(check bool) "fitness prefers fewer slices" true
    (Objective.fitness obj (m 100 90.0 10) > Objective.fitness obj (m 200 90.0 10));
  Alcotest.(check bool) "min-latch-bits always feasible" true
    (Objective.feasible Objective.Min_latch_bits (m 10_000_000 0.1 10));
  Alcotest.(check bool) "fitness prefers fewer latch bits" true
    (Objective.fitness Objective.Min_latch_bits (m 100 50.0 5)
    > Objective.fitness Objective.Min_latch_bits (m 100 50.0 10))

(* ---- search ---- *)

let small_space =
  { Search.sp_unroll = [ 1; 2 ];
    sp_bus = [ 1; 2 ];
    sp_target_ns = [ 5.0; 8.0 ];
    sp_stage_budget = [ 0 ];
    sp_decomp = [ Roccc_datapath.Delay.Csa ] }

let settings ?(use_quick = true) ?(margin = Search.default_margin)
    ?(domains = 1) obj =
  { (Search.default_settings obj) with
    Search.st_space = small_space;
    st_margin = margin;
    st_use_quick = use_quick;
    st_domains = domains }

let front_labels (r : Search.result) : string list =
  List.map (fun ((rw : Search.row), _) -> rw.Search.rw_label) r.Search.res_front

let test_pruning_matches_exhaustive () =
  (* the quick rung's margin pruning must never change the front an
     exhaustive (no-quick) search over the same grid produces *)
  let obj = Objective.Max_mhz { slice_budget = Roccc_fpga.Area.xc2v2000_slices } in
  let pruned =
    Search.run (settings ~use_quick:true obj) ~source:fir16_source ~entry:"fir"
  in
  let exhaustive =
    Search.run (settings ~use_quick:false obj) ~source:fir16_source ~entry:"fir"
  in
  Alcotest.(check (list string)) "same front as exhaustive"
    (front_labels exhaustive) (front_labels pruned);
  Alcotest.(check int) "exhaustive estimates the whole grid"
    exhaustive.Search.res_explored exhaustive.Search.res_estimate_evals

let test_front_is_nondominated_and_feasible () =
  let budget = 400 in
  let obj = Objective.Max_mhz { slice_budget = budget } in
  let r = Search.run (settings obj) ~source:fir16_source ~entry:"fir" in
  Alcotest.(check bool) "front is non-empty" true (r.Search.res_front <> []);
  let metrics =
    List.map
      (fun ((rw : Search.row), _) ->
        Pareto.of_measurement (Option.get rw.Search.rw_measure))
      r.Search.res_front
  in
  List.iter
    (fun pm ->
      Alcotest.(check bool) "front point within budget" true
        (pm.Pareto.p_slices <= budget);
      Alcotest.(check bool) "no front point dominates another" false
        (List.exists (fun qm -> Pareto.dominates qm pm) metrics))
    metrics

let test_fewer_full_compiles_than_grid () =
  let obj = Objective.Max_mhz { slice_budget = Roccc_fpga.Area.xc2v2000_slices } in
  let r = Search.run (settings obj) ~source:fir16_source ~entry:"fir" in
  Alcotest.(check int) "whole grid explored" 8 r.Search.res_explored;
  Alcotest.(check bool) "strictly fewer full compiles than exhaustive" true
    (r.Search.res_full_evals < r.Search.res_explored);
  Alcotest.(check int) "full compiles only for the front"
    (List.length r.Search.res_front)
    r.Search.res_full_evals

let test_deterministic_across_domains () =
  let obj = Objective.Min_slices { target_mhz = 0.0 } in
  let r1 = Search.run (settings ~domains:1 obj) ~source:fir16_source ~entry:"fir" in
  let r4 = Search.run (settings ~domains:4 obj) ~source:fir16_source ~entry:"fir" in
  Alcotest.(check (list string)) "same front under 4 workers"
    (front_labels r1) (front_labels r4);
  let statuses r =
    List.map
      (fun (rw : Search.row) -> (rw.Search.rw_label, Search.status_name rw.Search.rw_status))
      r.Search.res_rows
  in
  Alcotest.(check (list (pair string string))) "same per-candidate statuses"
    (statuses r1) (statuses r4)

let test_cache_shares_midend () =
  (* all candidates share unroll=1, so the whole grid has one mid-end
     prefix: every mid-end pass must compile exactly once, and every
     later candidate must reuse it (zero-duration [cached] spans) *)
  let obj = Objective.Max_mhz { slice_budget = Roccc_fpga.Area.xc2v2000_slices } in
  let st =
    { (settings obj) with
      Search.st_space =
        { small_space with
          Search.sp_unroll = [ 1 ];
          sp_bus = [ 1; 2 ];
          sp_target_ns = [ 3.0; 5.0 ] } }
  in
  let trace = Trace.create () in
  let cache = Cache.create () in
  let r = Search.run ~cache ~trace st ~source:fir16_source ~entry:"fir" in
  Alcotest.(check int) "four candidates" 4 r.Search.res_explored;
  let spans = Trace.spans trace in
  let parse_runs, parse_cached =
    List.partition
      (fun (s : Trace.span) ->
        not (List.mem_assoc "cached" s.Trace.sp_args))
      (List.filter
         (fun (s : Trace.span) ->
           s.Trace.sp_cat = "pass" && s.Trace.sp_name = "parse")
         spans)
  in
  Alcotest.(check int) "parse compiled once for the whole search" 1
    (List.length parse_runs);
  Alcotest.(check bool) "later candidates reuse it as cached spans" true
    (List.length parse_cached > 0);
  List.iter
    (fun (s : Trace.span) ->
      Alcotest.(check (float 0.0)) "cached spans have zero duration" 0.0
        s.Trace.sp_dur_s)
    parse_cached

let test_duplicate_axis_points_collapse () =
  let obj = Objective.Min_latch_bits in
  let st =
    { (settings obj) with
      Search.st_space =
        { small_space with
          Search.sp_unroll = [ 1; 1; 1 ];
          sp_bus = [ 2; 2 ];
          sp_target_ns = [ 5.0; 5.0 ] } }
  in
  let r = Search.run st ~source:fir16_source ~entry:"fir" in
  Alcotest.(check int) "duplicated points compile once" 1 r.Search.res_explored

(* ---- CLI axis validators ---- *)

let test_axis_validators () =
  (match Server.check_positive_int_list ~flag:"--unroll" [ 4; 2; 4; 2 ] with
  | Ok vs ->
    Alcotest.(check (list int)) "dedupe keeps first occurrences" [ 4; 2 ] vs
  | Error e -> Alcotest.fail e);
  let is_err = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "zero rejected" true
    (is_err (Server.check_positive_int_list ~flag:"--unroll" [ 1; 0 ]));
  Alcotest.(check bool) "negative rejected" true
    (is_err (Server.check_positive_int_list ~flag:"--unroll" [ -2 ]));
  Alcotest.(check bool) "empty list rejected" true
    (is_err (Server.check_positive_int_list ~flag:"--unroll" []));
  (match Server.check_positive_float_list ~flag:"--target-ns" [ 5.0; 3.0; 5.0 ] with
  | Ok vs -> Alcotest.(check (list (float 0.0))) "float dedupe" [ 5.0; 3.0 ] vs
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "zero ns rejected" true
    (is_err (Server.check_positive_float_list ~flag:"--target-ns" [ 0.0 ]));
  Alcotest.(check bool) "nan rejected" true
    (is_err (Server.check_positive_float_list ~flag:"--target-ns" [ Float.nan ]))

(* ---- serialization ---- *)

let test_json_and_table () =
  let obj = Objective.Max_mhz { slice_budget = Roccc_fpga.Area.xc2v2000_slices } in
  let r = Search.run (settings obj) ~source:fir16_source ~entry:"fir" in
  let json = Search.to_json r in
  (match Roccc_service.Json.parse json with
  | Error e -> Alcotest.fail ("pareto.json does not parse: " ^ e)
  | Ok j ->
    let int_member k =
      match Option.bind (Roccc_service.Json.member k j) Roccc_service.Json.to_int_opt with
      | Some v -> v
      | None -> Alcotest.fail ("missing field " ^ k)
    in
    Alcotest.(check int) "explored field" r.Search.res_explored (int_member "explored");
    Alcotest.(check int) "full_evals field" r.Search.res_full_evals (int_member "full_evals");
    Alcotest.(check int) "front_size field"
      (List.length r.Search.res_front)
      (int_member "front_size"));
  let table = Search.table r in
  Alcotest.(check bool) "table names the objective" true
    (let rec contains i =
       i + 7 <= String.length table
       && (String.sub table i 7 = "max-mhz" || contains (i + 1))
     in
     contains 0)

let suites =
  [ ( "tune.pareto",
      [ Alcotest.test_case "dominates" `Quick test_dominates;
        Alcotest.test_case "margin dominates" `Quick test_margin_dominates;
        Alcotest.test_case "front extraction" `Quick test_front ] );
    ( "tune.objective",
      [ Alcotest.test_case "parse" `Quick test_objective_parse;
        Alcotest.test_case "feasibility and fitness" `Quick
          test_objective_feasible_fitness ] );
    ( "tune.search",
      [ Alcotest.test_case "pruned front matches exhaustive" `Quick
          test_pruning_matches_exhaustive;
        Alcotest.test_case "front is feasible and non-dominated" `Quick
          test_front_is_nondominated_and_feasible;
        Alcotest.test_case "fewer full compiles than the grid" `Quick
          test_fewer_full_compiles_than_grid;
        Alcotest.test_case "deterministic across worker counts" `Quick
          test_deterministic_across_domains;
        Alcotest.test_case "mid-end compiles once across candidates" `Quick
          test_cache_shares_midend;
        Alcotest.test_case "duplicate axis points collapse" `Quick
          test_duplicate_axis_points_collapse ] );
    ( "tune.cli",
      [ Alcotest.test_case "axis validators" `Quick test_axis_validators;
        Alcotest.test_case "pareto json and table" `Quick test_json_and_table ] )
  ]
