(* Unit coverage for the utility layer and small helpers that the property
   suites exercise only indirectly. *)

open Roccc_util

let test_id_gen () =
  let g = Id_gen.create () in
  Alcotest.(check int) "first" 0 (Id_gen.fresh g);
  Alcotest.(check int) "second" 1 (Id_gen.fresh g);
  Alcotest.(check int) "peek" 2 (Id_gen.peek g);
  Alcotest.(check int) "peek is not fresh" 2 (Id_gen.fresh g);
  Id_gen.reset g;
  Alcotest.(check int) "after reset" 0 (Id_gen.fresh g);
  let h = Id_gen.create ~start:10 () in
  Alcotest.(check int) "custom start" 10 (Id_gen.fresh h)

let test_bits_64_boundary () =
  (* width-64 operations must not shift out of range *)
  Alcotest.(check int64) "mask 64" (-1L) (Bits.mask 64);
  Alcotest.(check int64) "truncate unsigned 64 identity" (-1L)
    (Bits.truncate_unsigned 64 (-1L));
  Alcotest.(check int64) "truncate signed 64 identity" Int64.min_int
    (Bits.truncate_signed 64 Int64.min_int);
  Alcotest.(check int) "bits for -1 unsigned" 64 (Bits.bits_for_unsigned (-1L))

let test_bits_one_bit () =
  Alcotest.(check int64) "1-bit signed -1" (-1L) (Bits.truncate_signed 1 1L);
  Alcotest.(check int64) "1-bit signed 0" 0L (Bits.truncate_signed 1 2L);
  Alcotest.(check int64) "1-bit unsigned" 1L (Bits.truncate_unsigned 1 3L);
  Alcotest.(check int64) "min signed 1" (-1L) (Bits.min_value ~signed:true 1);
  Alcotest.(check int64) "max signed 1" 0L (Bits.max_value ~signed:true 1)

let test_bits_binary_string () =
  Alcotest.(check string) "5 in 4 bits" "0101" (Bits.to_binary_string ~width:4 5L);
  Alcotest.(check string) "-1 in 4 bits" "1111"
    (Bits.to_binary_string ~width:4 (-1L));
  Alcotest.(check string) "zero" "00000000" (Bits.to_binary_string ~width:8 0L)

let test_bitset_basics () =
  let b = Bitset.create 100 in
  Alcotest.(check int) "length" 100 (Bitset.length b);
  Alcotest.(check bool) "fresh set is empty" true (Bitset.is_empty b);
  (* straddle the word boundary *)
  List.iter (Bitset.set b) [ 0; 62; 63; 99 ];
  Alcotest.(check bool) "mem 63" true (Bitset.mem b 63);
  Alcotest.(check bool) "not mem 64" false (Bitset.mem b 64);
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal b);
  Alcotest.(check (list int)) "elements ascending" [ 0; 62; 63; 99 ]
    (Bitset.elements b);
  Bitset.set b 62;
  Alcotest.(check int) "set is idempotent" 4 (Bitset.cardinal b);
  Bitset.clear b 62;
  Alcotest.(check (list int)) "after clear" [ 0; 63; 99 ] (Bitset.elements b);
  Alcotest.(check int) "fold counts members" 3
    (Bitset.fold (fun _ n -> n + 1) b 0)

let test_bitset_inplace_ops () =
  let a = Bitset.of_list 130 [ 1; 64; 127 ] in
  let b = Bitset.of_list 130 [ 64; 128 ] in
  let u = Bitset.copy a in
  Alcotest.(check bool) "union changed" true (Bitset.union_into ~dst:u b);
  Alcotest.(check (list int)) "union" [ 1; 64; 127; 128 ] (Bitset.elements u);
  Alcotest.(check bool) "union reached fixpoint" false
    (Bitset.union_into ~dst:u b);
  let i = Bitset.copy a in
  Alcotest.(check bool) "inter changed" true (Bitset.inter_into ~dst:i b);
  Alcotest.(check (list int)) "inter" [ 64 ] (Bitset.elements i);
  let d = Bitset.copy a in
  Alcotest.(check bool) "diff changed" true (Bitset.diff_into ~dst:d b);
  Alcotest.(check (list int)) "diff" [ 1; 127 ] (Bitset.elements d);
  Alcotest.(check bool) "equal to a fresh copy" true
    (Bitset.equal a (Bitset.copy a));
  Alcotest.(check bool) "not equal" false (Bitset.equal a b);
  let blitted = Bitset.create 130 in
  Bitset.blit ~src:a ~dst:blitted;
  Alcotest.(check bool) "blit copies" true (Bitset.equal a blitted)

let test_bitset_fill_and_tail_bits () =
  (* 65 bits: one full word + one bit; fill_all must keep the unused high
     bits of the last word zero or cardinal/equal/iter all drift *)
  let b = Bitset.create 65 in
  Bitset.fill_all b;
  Alcotest.(check int) "fill_all cardinal" 65 (Bitset.cardinal b);
  Alcotest.(check bool) "last member present" true (Bitset.mem b 64);
  let empty = Bitset.create 65 in
  Alcotest.(check bool) "diff with empty is a no-op" false
    (Bitset.diff_into ~dst:b empty);
  Alcotest.(check int) "still full" 65 (Bitset.cardinal b);
  let also_full = Bitset.create 65 in
  Bitset.fill_all also_full;
  Alcotest.(check bool) "full = full" true (Bitset.equal b also_full);
  Bitset.clear_all b;
  Alcotest.(check bool) "clear_all empties" true (Bitset.is_empty b);
  (* iter visits in increasing order *)
  let c = Bitset.of_list 200 [ 199; 5; 63; 64; 0 ] in
  let seen = ref [] in
  Bitset.iter (fun i -> seen := i :: !seen) c;
  Alcotest.(check (list int)) "iter ascending" [ 0; 5; 63; 64; 199 ]
    (List.rev !seen)

let test_controller_sketch () =
  let c =
    Roccc_buffers.Controller.create ~total_iterations:17 ~pipeline_latency:3
  in
  let text = Roccc_buffers.Controller.to_vhdl_sketch c ~name:"fir" in
  Alcotest.(check bool) "mentions iteration count" true
    (let re = Str.regexp_string "17" in
     try ignore (Str.search_forward re text 0); true with Not_found -> false);
  Alcotest.(check bool) "lists states" true
    (let re = Str.regexp_string "idle, filling, steady, draining, done" in
     try ignore (Str.search_forward re text 0); true with Not_found -> false)

let test_controller_lifecycle () =
  let open Roccc_buffers.Controller in
  let c = create ~total_iterations:2 ~pipeline_latency:1 in
  Alcotest.(check string) "starts idle" "idle" (state_name c.state);
  start c;
  Alcotest.(check string) "filling after start" "filling" (state_name c.state);
  note_launch c;
  step c ~window_ready:true ~input_done:false;
  Alcotest.(check string) "steady after first launch" "steady"
    (state_name c.state);
  note_launch c;
  note_retire c;
  step c ~window_ready:false ~input_done:true;
  Alcotest.(check string) "draining when all launched" "draining"
    (state_name c.state);
  note_retire c;
  step c ~window_ready:false ~input_done:true;
  Alcotest.(check bool) "done when all retired" true (is_done c)

let test_proc_block_uses () =
  let open Roccc_vm in
  let proc = Proc.create "t" in
  let b = Proc.fresh_block proc in
  let k = Roccc_cfront.Ast.int32_kind in
  let r0 = Proc.fresh_reg proc k in
  let r1 = Proc.fresh_reg proc k in
  let r2 = Proc.fresh_reg proc k in
  b.Proc.instrs <- [ Instr.make ~dst:r2 Instr.Add [ r0; r1 ] k ];
  b.Proc.term <- Proc.Branch (r2, 0, 0);
  Alcotest.(check (list int)) "defs" [ r2 ] (Proc.block_defs b);
  Alcotest.(check (list int)) "uses include branch reg" [ r0; r1; r2 ]
    (List.sort compare (Proc.block_uses b))

let test_instr_printing () =
  let open Roccc_vm in
  let k = Roccc_cfront.Ast.int32_kind in
  let i = Instr.make ~dst:5 Instr.Add [ 1; 2 ] k in
  Alcotest.(check string) "add text" "v5 = add v1, v2 :s32"
    (Instr.to_string i);
  let snx = { Instr.op = Instr.Snx "sum"; dst = None; srcs = [ 7 ]; kind = k } in
  Alcotest.(check string) "snx text" "snx[sum] v7 :s32" (Instr.to_string snx)

let suites =
  [ "util",
    [ Alcotest.test_case "id generator" `Quick test_id_gen;
      Alcotest.test_case "64-bit boundary" `Quick test_bits_64_boundary;
      Alcotest.test_case "1-bit kinds" `Quick test_bits_one_bit;
      Alcotest.test_case "binary rendering" `Quick test_bits_binary_string;
      Alcotest.test_case "bitset basics" `Quick test_bitset_basics;
      Alcotest.test_case "bitset in-place operators" `Quick
        test_bitset_inplace_ops;
      Alcotest.test_case "bitset fill and tail bits" `Quick
        test_bitset_fill_and_tail_bits;
      Alcotest.test_case "controller VHDL sketch" `Quick
        test_controller_sketch;
      Alcotest.test_case "controller lifecycle" `Quick
        test_controller_lifecycle;
      Alcotest.test_case "block defs/uses" `Quick test_proc_block_uses;
      Alcotest.test_case "instruction printing" `Quick test_instr_printing ] ]
