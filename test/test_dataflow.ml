(* The bit-vector data-flow engine against its set-based reference oracle
   (Dataflow.Reference, the pre-engine shapes): set-for-set equality of all
   three analyses across the kernel gallery including unrolled variants,
   plus worklist-convergence regressions on synthetic >=200-block CFGs that
   the old sweep-budget solver was sized around. *)

open Roccc_vm
open Roccc_analysis
module Driver = Roccc_core.Driver
module Pass = Roccc_core.Pass
module Kernels = Roccc_core.Kernels
module Ast = Roccc_cfront.Ast

(* run the pipeline up to (and including) SSA construction — the exact
   procedure the optimizer's analyses see *)
let proc_after_ssa ?(luts = []) ~entry ~options src =
  let upto = ref [] in
  let rec take = function
    | [] -> ()
    | (p : Pass.pass) :: rest ->
      upto := p :: !upto;
      if p.Pass.name <> "ssa-and-cfg" then take rest
  in
  take (Pass.front_passes @ Pass.kernel_passes @ Pass.back_passes);
  let st =
    List.fold_left
      (fun st p -> Pass.step p st)
      (Pass.initial ~luts ~options ~entry src)
      (List.rev !upto)
  in
  Option.get st.Pass.st_proc

(* ---- differential: dense engine vs Reference, set for set ---- *)

let check_sets name label which a b =
  if not (Dataflow.IS.equal a b) then
    Alcotest.failf "%s: block %d %s differs: dense {%s} vs reference {%s}"
      name label which
      (String.concat "," (List.map string_of_int (Dataflow.IS.elements a)))
      (String.concat "," (List.map string_of_int (Dataflow.IS.elements b)))

let check_solutions name labels s_new s_ref =
  List.iter
    (fun l ->
      check_sets name l "in" (Dataflow.in_of s_new l) (Dataflow.in_of s_ref l);
      check_sets name l "out" (Dataflow.out_of s_new l)
        (Dataflow.out_of s_ref l))
    labels

(* available-expression ids are private to each numbering; compare the
   expression *keys* each block's sets denote *)
let keys_of numbering set =
  let inv = Hashtbl.create 16 in
  Hashtbl.iter (fun k id -> Hashtbl.replace inv id k) numbering;
  Dataflow.IS.elements set
  |> List.map (fun id ->
         match Hashtbl.find_opt inv id with
         | Some k -> k
         | None -> Printf.sprintf "<unknown expr %d>" id)
  |> List.sort compare

let check_differential name (proc : Proc.t) =
  let g = Cfg.build proc in
  let labels = List.map (fun (b : Proc.block) -> b.Proc.label) proc.Proc.blocks in
  let live_new = Dataflow.liveness g in
  let live_ref = Dataflow.Reference.liveness g in
  check_solutions (name ^ ".liveness") labels live_new live_ref;
  let reach_new, sites_new = Dataflow.reaching_definitions g in
  let reach_ref, sites_ref = Dataflow.Reference.reaching_definitions g in
  Alcotest.(check int)
    (name ^ " same definition-site count")
    (List.length sites_ref) (List.length sites_new);
  List.iter2
    (fun (a : Dataflow.def_site) (b : Dataflow.def_site) ->
      Alcotest.(check (triple int int int))
        (name ^ " same definition sites")
        (b.Dataflow.site_id, b.Dataflow.site_block, b.Dataflow.site_reg)
        (a.Dataflow.site_id, a.Dataflow.site_block, a.Dataflow.site_reg))
    sites_new sites_ref;
  check_solutions (name ^ ".reaching") labels reach_new reach_ref;
  let avail_new, num_new = Dataflow.available_expressions g in
  let avail_ref, num_ref = Dataflow.Reference.available_expressions g in
  List.iter
    (fun l ->
      Alcotest.(check (list string))
        (Printf.sprintf "%s.available block %d in" name l)
        (keys_of num_ref (Dataflow.in_of avail_ref l))
        (keys_of num_new (Dataflow.in_of avail_new l));
      Alcotest.(check (list string))
        (Printf.sprintf "%s.available block %d out" name l)
        (keys_of num_ref (Dataflow.out_of avail_ref l))
        (keys_of num_new (Dataflow.out_of avail_new l)))
    labels

let test_differential_gallery () =
  List.iter
    (fun (b : Kernels.benchmark) ->
      let options = b.Kernels.tune Driver.default_options in
      let proc =
        proc_after_ssa ~luts:b.Kernels.luts ~entry:b.Kernels.entry ~options
          b.Kernels.source
      in
      check_differential b.Kernels.bench_name proc)
    Kernels.table1

let test_differential_unrolled () =
  let fir_src =
    "void fir(int8 A[68], int16 C[64]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 64; i++) {\n\
    \    C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];\n\
    \  }\n\
     }\n"
  in
  List.iter
    (fun factor ->
      let options =
        { Driver.default_options with
          Driver.unroll_outer_factor = factor;
          bus_elements = factor }
      in
      let proc = proc_after_ssa ~entry:"fir" ~options fir_src in
      check_differential (Printf.sprintf "fir.u%d" factor) proc)
    [ 2; 4; 16 ]

(* ---- worklist convergence on large synthetic CFGs ---- *)

(* A ladder of [diamonds] diamonds (header -> left/right -> join), each
   redefining the accumulator on both arms; with [loops], every tenth join
   conditionally branches back to its own header. 1 + 4*diamonds + 1
   blocks. The old solver capped iteration at a blocks^2 sweep budget;
   the worklist solver must converge by emptiness with visit counts linear
   in the block count. *)
let build_ladder ~diamonds ~loops () =
  let proc = Proc.create "ladder" in
  let k = Ast.int32_kind in
  let entry = Proc.fresh_block proc in
  let step = Proc.fresh_reg proc k in
  let acc = Proc.fresh_reg proc k in
  entry.Proc.instrs <-
    [ Instr.make ~dst:step (Instr.Ldc 1L) [] k;
      Instr.make ~dst:acc (Instr.Ldc 0L) [] k ];
  let link = ref (fun l -> entry.Proc.term <- Proc.Jump l) in
  for i = 1 to diamonds do
    let hd = Proc.fresh_block proc in
    let lf = Proc.fresh_block proc in
    let rt = Proc.fresh_block proc in
    let jn = Proc.fresh_block proc in
    !link hd.Proc.label;
    let cond = Proc.fresh_reg proc Ast.bool_kind in
    hd.Proc.instrs <-
      [ Instr.make ~dst:cond Instr.Slt [ acc; step ] Ast.bool_kind ];
    hd.Proc.term <- Proc.Branch (cond, lf.Proc.label, rt.Proc.label);
    lf.Proc.instrs <- [ Instr.make ~dst:acc Instr.Add [ acc; step ] k ];
    lf.Proc.term <- Proc.Jump jn.Proc.label;
    rt.Proc.instrs <- [ Instr.make ~dst:acc Instr.Sub [ acc; step ] k ];
    rt.Proc.term <- Proc.Jump jn.Proc.label;
    if loops && i mod 10 = 0 then begin
      let again = Proc.fresh_reg proc Ast.bool_kind in
      jn.Proc.instrs <-
        [ Instr.make ~dst:again Instr.Sgt [ acc; step ] Ast.bool_kind ];
      link :=
        fun l -> jn.Proc.term <- Proc.Branch (again, hd.Proc.label, l)
    end
    else link := fun l -> jn.Proc.term <- Proc.Jump l
  done;
  let exit_b = Proc.fresh_block proc in
  !link exit_b.Proc.label;
  exit_b.Proc.term <- Proc.Ret;
  { proc with
    Proc.outputs = [ { Proc.port_name = "acc"; port_reg = acc; port_kind = k } ]
  }

let test_ladder_dag_convergence () =
  let proc = build_ladder ~diamonds:60 ~loops:false () in
  let n = List.length proc.Proc.blocks in
  Alcotest.(check bool) "at least 200 blocks" true (n >= 200);
  let g = Cfg.build proc in
  let reach, _sites = Dataflow.reaching_dense g in
  (* acyclic + RPO seeding: one pass over the worklist settles everything *)
  Alcotest.(check int) "forward visits = one RPO sweep" n
    reach.Dataflow.ds_visits;
  let live = Dataflow.liveness_dense g in
  Alcotest.(check bool)
    (Printf.sprintf "backward visits %d within 2x blocks (%d)"
       live.Dataflow.ds_visits n)
    true
    (live.Dataflow.ds_visits <= 2 * n);
  let avail, _ = Dataflow.available_dense g in
  Alcotest.(check bool) "available converges linearly" true
    (avail.Dataflow.ds_visits <= 2 * n);
  (* the engine agrees with the reference on the big CFG too *)
  check_differential "ladder-dag" proc

let test_ladder_loops_convergence () =
  let proc = build_ladder ~diamonds:60 ~loops:true () in
  let n = List.length proc.Proc.blocks in
  Alcotest.(check bool) "at least 200 blocks" true (n >= 200);
  let g = Cfg.build proc in
  let reach, _ = Dataflow.reaching_dense g in
  Alcotest.(check bool)
    (Printf.sprintf "loopy forward visits %d within 4x blocks (%d)"
       reach.Dataflow.ds_visits n)
    true
    (reach.Dataflow.ds_visits <= 4 * n);
  let live = Dataflow.liveness_dense g in
  Alcotest.(check bool)
    (Printf.sprintf "loopy backward visits %d within 4x blocks (%d)"
       live.Dataflow.ds_visits n)
    true
    (live.Dataflow.ds_visits <= 4 * n);
  check_differential "ladder-loops" proc

(* dominance frontiers on the ladder: the bitset-backed construction must
   match a direct reading of Cytron's definition *)
let test_ladder_dominance_frontiers () =
  let proc = build_ladder ~diamonds:60 ~loops:true () in
  let g = Cfg.build proc in
  let df = Cfg.dominance_frontiers g in
  List.iter
    (fun (b : Proc.block) ->
      let x = b.Proc.label in
      let expected =
        (* y is in DF(x) iff x dominates a predecessor of y but not y
           strictly (x = y allowed) *)
        List.filter_map
          (fun (y : Proc.block) ->
            let y = y.Proc.label in
            let dominates_pred =
              List.exists
                (fun p -> Cfg.dominates g x p)
                (Cfg.predecessors g y)
            in
            if dominates_pred && (x = y || not (Cfg.dominates g x y)) then
              Some y
            else None)
          proc.Proc.blocks
      in
      let got =
        List.sort compare (Option.value (Hashtbl.find_opt df x) ~default:[])
      in
      Alcotest.(check (list int))
        (Printf.sprintf "DF(%d)" x)
        (List.sort compare expected)
        got)
    proc.Proc.blocks

let suites =
  [ "dataflow",
    [ Alcotest.test_case "dense engine = reference on the gallery" `Slow
        test_differential_gallery;
      Alcotest.test_case "dense engine = reference on unrolled FIR" `Slow
        test_differential_unrolled;
      Alcotest.test_case "240-block DAG ladder converges linearly" `Quick
        test_ladder_dag_convergence;
      Alcotest.test_case "240-block loopy ladder converges" `Quick
        test_ladder_loops_convergence;
      Alcotest.test_case "ladder dominance frontiers match definition"
        `Quick test_ladder_dominance_frontiers ] ]
