(* Tests for data-path construction (Figures 5-7), pipelining and bit-width
   inference. *)

open Roccc_cfront
open Roccc_hir
open Roccc_vm
open Roccc_analysis
open Roccc_datapath

let if_else_source = Roccc_core.Kernels.paper_if_else_source

let fir_source = Roccc_core.Kernels.paper_fir_source

let acc_source = Roccc_core.Kernels.paper_acc_source

let datapath_of src name =
  let prog = Parser.parse_program src in
  let _ = Semant.check_program prog in
  let f = List.find (fun g -> g.Ast.fname = name) prog.Ast.funcs in
  let k = Feedback.annotate (Scalar_replacement.run prog f) in
  let proc = Lower.lower_kernel k in
  let _ = Ssa.convert proc in
  Ssa.verify proc;
  Builder.build proc

(* ------------------------------------------------------------------ *)
(* Structure (Figure 6)                                                *)
(* ------------------------------------------------------------------ *)

let count_kind dp pred =
  List.length (List.filter (fun (n : Graph.node) -> pred n.Graph.node_kind) dp.Graph.nodes)

let test_if_else_structure () =
  let dp = datapath_of if_else_source "if_else" in
  (* soft nodes: entry-block, then, else, join = 4 (paper nodes 1-4) *)
  Alcotest.(check int) "4 soft nodes" 4
    (count_kind dp (function Graph.Soft _ -> true | _ -> false));
  (* one mux hard node (paper node 7) *)
  Alcotest.(check int) "1 mux node" 1
    (count_kind dp (function Graph.Mux_node _ -> true | _ -> false));
  (* at least one pipe hard node (paper node 6) *)
  Alcotest.(check bool) "pipe node present" true
    (count_kind dp (function Graph.Pipe_node -> true | _ -> false) >= 1);
  Alcotest.(check int) "entry node" 1
    (count_kind dp (function Graph.Entry_node -> true | _ -> false));
  Alcotest.(check int) "exit node" 1
    (count_kind dp (function Graph.Exit_node -> true | _ -> false))

let test_if_else_mux_parallel_to_nothing () =
  (* The mux node's level is strictly after the branch level and before the
     join soft node's level. *)
  let dp = datapath_of if_else_source "if_else" in
  let level_of pred =
    List.find_map
      (fun (n : Graph.node) ->
        if pred n.Graph.node_kind then Some n.Graph.level else None)
      dp.Graph.nodes
  in
  let mux_level =
    Option.get (level_of (function Graph.Mux_node _ -> true | _ -> false))
  in
  let pipe_level =
    Option.get (level_of (function Graph.Pipe_node -> true | _ -> false))
  in
  Alcotest.(check int) "pipe runs alongside the branches" (mux_level - 1)
    pipe_level

let test_adjoining_invariant () =
  List.iter
    (fun (src, name) -> Builder.verify_adjoining (datapath_of src name))
    [ if_else_source, "if_else"; fir_source, "fir"; acc_source, "acc" ]

let test_straightline_no_hard_nodes () =
  let dp = datapath_of fir_source "fir" in
  Alcotest.(check int) "no mux nodes" 0
    (count_kind dp (function Graph.Mux_node _ -> true | _ -> false));
  Alcotest.(check int) "no pipe nodes" 0
    (count_kind dp (function Graph.Pipe_node -> true | _ -> false))

let test_nested_if_structure () =
  let src =
    "void nested(int x, int y, int* o) {\n\
    \  int r;\n\
    \  r = 0;\n\
    \  if (x > 0) {\n\
    \    if (y > 0) { r = x + y; } else { r = x - y; }\n\
    \  } else {\n\
    \    r = y;\n\
    \  }\n\
    \  *o = r;\n\
     }"
  in
  let dp = datapath_of src "nested" in
  Builder.verify_adjoining dp;
  (* two joins -> two mux nodes *)
  Alcotest.(check int) "2 mux nodes" 2
    (count_kind dp (function Graph.Mux_node _ -> true | _ -> false))

(* ------------------------------------------------------------------ *)
(* Behaviour                                                           *)
(* ------------------------------------------------------------------ *)

let test_dp_eval_if_else () =
  let dp = datapath_of if_else_source "if_else" in
  let reference x1 x2 =
    let c = x1 - x2 in
    let a = if c < x2 then x1 * x1 else (x1 * x2) + 3 in
    Int64.of_int (c - a), Int64.of_int a
  in
  List.iter
    (fun (x1, x2) ->
      let r =
        Dp_eval.run dp
          ~inputs:[ "x1", Int64.of_int x1; "x2", Int64.of_int x2 ]
      in
      let w3, w4 = reference x1 x2 in
      Alcotest.(check int64) "x3" w3 (List.assoc "x3" r.Dp_eval.outputs);
      Alcotest.(check int64) "x4" w4 (List.assoc "x4" r.Dp_eval.outputs))
    [ 0, 0; 5, 3; 3, 5; -4, 10; 100, -100; 7, 7 ]

let test_dp_eval_speculative_division () =
  (* Division on the not-taken branch must not trap the whole data path. *)
  let src =
    "void sdiv(int x, int y, int* o) {\n\
    \  int r;\n\
    \  if (y != 0) { r = x / y; } else { r = 0; }\n\
    \  *o = r;\n\
     }"
  in
  let dp = datapath_of src "sdiv" in
  let r = Dp_eval.run dp ~inputs:[ "x", 10L; "y", 0L ] in
  Alcotest.(check int64) "guarded division" 0L (List.assoc "o" r.Dp_eval.outputs)

let test_dp_eval_accumulator_stream () =
  let dp = datapath_of acc_source "acc" in
  let stream = List.init 32 (fun i -> [ "A0", Int64.of_int i ]) in
  let rs = Dp_eval.run_stream dp stream in
  let last = List.nth rs 31 in
  Alcotest.(check int64) "final sum" 496L (List.assoc "Tmp0" last.Dp_eval.outputs)

let test_dp_conditional_accumulator () =
  (* mul_acc-style kernel: iterations with nd = 0 must NOT clobber the
     feedback register even though every hardware lane executes. *)
  let src =
    "int acc = 0;\n\
     void mul_acc(int A[8], int B[8], int ND[8], int* out) {\n\
    \  int i;\n\
    \  for (i = 0; i < 8; i++) {\n\
    \    if (ND[i]) { acc = acc + A[i] * B[i]; }\n\
    \  }\n\
    \  *out = acc;\n\
     }"
  in
  let dp = datapath_of src "mul_acc" in
  let a = [| 1; 2; 3; 4; 5; 6; 7; 8 |] in
  let b = [| 10; 20; 30; 40; 50; 60; 70; 80 |] in
  let nd = [| 1; 0; 1; 0; 1; 0; 1; 0 |] in
  let stream =
    List.init 8 (fun i ->
        [ "A0", Int64.of_int a.(i); "B0", Int64.of_int b.(i);
          "ND0", Int64.of_int nd.(i) ])
  in
  let rs = Dp_eval.run_stream dp stream in
  let want =
    Array.to_list (Array.init 8 (fun i -> i))
    |> List.filter (fun i -> nd.(i) = 1)
    |> List.fold_left (fun s i -> s + (a.(i) * b.(i))) 0
  in
  let last = List.nth rs 7 in
  Alcotest.(check int64) "only nd=1 items accumulated" (Int64.of_int want)
    (List.assoc "Tmp0" last.Dp_eval.outputs)

let test_dp_matches_vm () =
  (* Data-path evaluation equals VM evaluation across inputs. *)
  let prog = Parser.parse_program if_else_source in
  let _ = Semant.check_program prog in
  let f = List.hd prog.Ast.funcs in
  let k = Feedback.annotate (Scalar_replacement.run prog f) in
  let proc_vm = Lower.lower_kernel k in
  let proc_dp = Lower.lower_kernel k in
  let _ = Ssa.convert proc_dp in
  let dp = Builder.build proc_dp in
  List.iter
    (fun (x1, x2) ->
      let inputs = [ "x1", Int64.of_int x1; "x2", Int64.of_int x2 ] in
      let rv = Eval.run proc_vm ~inputs in
      let rd = Dp_eval.run dp ~inputs in
      Alcotest.(check bool)
        (Printf.sprintf "same outputs at (%d, %d)" x1 x2)
        true
        (List.sort compare rv.Eval.outputs
        = List.sort compare rd.Dp_eval.outputs))
    [ 1, 2; -3, 8; 0, 0; 250, -250 ]

(* ------------------------------------------------------------------ *)
(* Bit-width inference                                                 *)
(* ------------------------------------------------------------------ *)

let test_widths_comparison_is_one_bit () =
  let dp = datapath_of if_else_source "if_else" in
  let w = Widths.infer dp in
  (* find the slt result *)
  let slt_width =
    List.find_map
      (fun (n : Graph.node) ->
        List.find_map
          (fun (i : Instr.instr) ->
            match i.Instr.op, i.Instr.dst with
            | Instr.Slt, Some d -> Some (Widths.width w d)
            | _ -> None)
          n.Graph.instrs)
      dp.Graph.nodes
  in
  Alcotest.(check (option int)) "slt is 1 bit" (Some 1) slt_width

let test_widths_narrowing () =
  (* 8-bit inputs: a multiply should be inferred at 16 bits, far below the
     declared 32. *)
  let src = "void m(uint8 a, uint8 b, int* o) { *o = a * b; }" in
  let dp = datapath_of src "m" in
  let w = Widths.infer dp in
  let mul_width =
    List.find_map
      (fun (n : Graph.node) ->
        List.find_map
          (fun (i : Instr.instr) ->
            match i.Instr.op, i.Instr.dst with
            | Instr.Mul, Some d -> Some (Widths.width w d)
            | _ -> None)
          n.Graph.instrs)
      dp.Graph.nodes
  in
  Alcotest.(check (option int)) "8x8 multiply is 16 bits" (Some 16) mul_width;
  Alcotest.(check bool) "narrowing below declared" true
    (Widths.narrowing_ratio dp w < 1.0)

let test_widths_add_grows_one_bit () =
  let src = "void a(uint8 x, uint8 y, uint16* o) { *o = x + y; }" in
  let dp = datapath_of src "a" in
  let w = Widths.infer dp in
  let add_width =
    List.find_map
      (fun (n : Graph.node) ->
        List.find_map
          (fun (i : Instr.instr) ->
            match i.Instr.op, i.Instr.dst with
            | Instr.Add, Some d -> Some (Widths.width w d)
            | _ -> None)
          n.Graph.instrs)
      dp.Graph.nodes
  in
  Alcotest.(check (option int)) "8+8 is 9 bits" (Some 9) add_width

let test_widths_all_signals_covered () =
  let dp = datapath_of fir_source "fir" in
  let w = Widths.infer dp in
  List.iter
    (fun (n : Graph.node) ->
      List.iter
        (fun (i : Instr.instr) ->
          match i.Instr.dst with
          | Some d ->
            let bits = Widths.width w d in
            Alcotest.(check bool) "1..64 bits" true (bits >= 1 && bits <= 64)
          | None -> ())
        n.Graph.instrs)
    dp.Graph.nodes

(* ------------------------------------------------------------------ *)
(* Pipelining                                                          *)
(* ------------------------------------------------------------------ *)

let pipeline_of src name =
  let dp = datapath_of src name in
  let w = Widths.infer dp in
  dp, w, Pipeline.build dp w

let test_pipeline_fir () =
  let _, _, p = pipeline_of fir_source "fir" in
  Alcotest.(check bool) "at least 2 stages" true (Pipeline.latency p >= 2);
  Alcotest.(check bool) "clock positive" true (p.Pipeline.clock_mhz > 0.0);
  Alcotest.(check bool) "stage delays within budget or single-op" true
    (Array.for_all
       (fun d -> d <= p.Pipeline.target_ns +. 10.0)
       p.Pipeline.stage_delays)

let test_pipeline_feedback_single_stage () =
  (* LPR and SNX of the accumulator share a stage (the feedback latch). *)
  let _, _, p = pipeline_of acc_source "acc" in
  let stages_of pred =
    List.filter_map
      (fun (si : Pipeline.staged_instr) ->
        if pred si.Pipeline.si.Instr.op then Some si.Pipeline.stage else None)
      p.Pipeline.instrs
  in
  let lpr = stages_of (function Instr.Lpr _ -> true | _ -> false) in
  let snx = stages_of (function Instr.Snx _ -> true | _ -> false) in
  Alcotest.(check bool) "lpr and snx present" true (lpr <> [] && snx <> []);
  List.iter
    (fun l ->
      List.iter
        (fun s -> Alcotest.(check int) "same stage" s l)
        snx)
    lpr;
  Alcotest.(check bool) "feedback bits counted" true
    (p.Pipeline.feedback_bits >= 32)

let test_pipeline_deeper_with_smaller_target () =
  let dp = datapath_of fir_source "fir" in
  let w = Widths.infer dp in
  let shallow = Pipeline.build ~target_ns:50.0 dp w in
  let deep = Pipeline.build ~target_ns:2.0 dp w in
  Alcotest.(check bool) "smaller budget -> more stages" true
    (Pipeline.latency deep >= Pipeline.latency shallow);
  Alcotest.(check bool) "smaller budget -> higher clock" true
    (deep.Pipeline.clock_mhz >= shallow.Pipeline.clock_mhz)

let test_pipeline_monotone_stages () =
  (* No instruction is staged before its operands. *)
  let _, _, p = pipeline_of if_else_source "if_else" in
  let stage_of_reg = Hashtbl.create 64 in
  List.iter
    (fun (si : Pipeline.staged_instr) ->
      match si.Pipeline.si.Instr.dst with
      | Some d -> Hashtbl.replace stage_of_reg d si.Pipeline.stage
      | None -> ())
    p.Pipeline.instrs;
  List.iter
    (fun (si : Pipeline.staged_instr) ->
      List.iter
        (fun r ->
          match Hashtbl.find_opt stage_of_reg r with
          | Some s ->
            Alcotest.(check bool) "producer not later than consumer" true
              (s <= si.Pipeline.stage)
          | None -> ())
        si.Pipeline.si.Instr.srcs)
    p.Pipeline.instrs

(* ------------------------------------------------------------------ *)
(* Delay model                                                         *)
(* ------------------------------------------------------------------ *)

let test_delay_width_monotone () =
  let k = { Ast.signed = true; bits = 32 } in
  List.iter
    (fun op ->
      let d w = Delay.instr_delay_ns op k [ w; w ] in
      Alcotest.(check bool) "8-bit <= 16-bit" true (d 8 <= d 16);
      Alcotest.(check bool) "16-bit <= 32-bit" true (d 16 <= d 32))
    [ Instr.Add; Instr.Sub; Instr.Mul; Instr.Div; Instr.Slt; Instr.Seq ]

let test_delay_const_mul_shift_add () =
  let k = { Ast.signed = true; bits = 16 } in
  let var = Delay.instr_delay_ns Instr.Mul k [ 16; 16 ] in
  let cst =
    Delay.instr_delay_ns ~const_operands:[ None; Some 5L ] Instr.Mul k
      [ 16; 16 ]
  in
  Alcotest.(check bool) "constant multiplier is cheaper" true (cst < var);
  (* x*5 = (x<<2)+x: two set bits, one adder level — exactly a 16-bit add *)
  let add = Delay.instr_delay_ns Instr.Add k [ 16; 16 ] in
  Alcotest.(check (float 1e-9)) "one shift-add level" add cst

let test_delay_const_shift_free () =
  let k = { Ast.signed = false; bits = 16 } in
  let cst =
    Delay.instr_delay_ns ~const_operands:[ None; Some 3L ] Instr.Shl k
      [ 16; 4 ]
  in
  Alcotest.(check (float 0.0)) "constant shift is wiring" 0.0 cst;
  let var = Delay.instr_delay_ns Instr.Shl k [ 16; 4 ] in
  Alcotest.(check bool) "variable shift costs a barrel" true (var > 0.0);
  let mask =
    Delay.instr_delay_ns ~const_operands:[ None; Some 255L ] Instr.Band k
      [ 16; 16 ]
  in
  Alcotest.(check (float 0.0)) "constant mask is wiring" 0.0 mask

(* ------------------------------------------------------------------ *)
(* Timed netlist + retiming                                            *)
(* ------------------------------------------------------------------ *)

let test_timing_mobility () =
  let dp = datapath_of fir_source "fir" in
  let w = Widths.infer dp in
  let tm = Timing.build ~target_ns:5.0 dp w in
  Alcotest.(check bool) "netlist non-empty" true (tm.Timing.instrs <> []);
  List.iter
    (fun (ti : Timing.tinstr) ->
      Alcotest.(check bool) "alap >= asap" true
        (ti.Timing.alap >= ti.Timing.asap);
      Alcotest.(check bool) "alap inside the schedule" true
        (ti.Timing.alap < tm.Timing.asap_stage_count);
      Alcotest.(check bool) "mobility non-negative" true
        (Timing.mobility ti >= 0))
    tm.Timing.instrs

let test_retiming_never_worse () =
  (* The ISSUE gate, as a unit test: at every clock target the retimed
     schedule spends no more latch bits than greedy placement, at the same
     depth and clock. *)
  List.iter
    (fun (src, name) ->
      let dp = datapath_of src name in
      let w = Widths.infer dp in
      List.iter
        (fun tns ->
          let greedy = Pipeline.build ~target_ns:tns ~retime:false dp w in
          let retimed = Pipeline.build ~target_ns:tns dp w in
          Pipeline.verify retimed;
          Alcotest.(check bool)
            (Printf.sprintf "%s@%.0fns: latch bits never increase" name tns)
            true
            (retimed.Pipeline.latch_bits <= greedy.Pipeline.latch_bits);
          Alcotest.(check int)
            (Printf.sprintf "%s@%.0fns: same depth" name tns)
            greedy.Pipeline.stage_count retimed.Pipeline.stage_count;
          Alcotest.(check bool)
            (Printf.sprintf "%s@%.0fns: clock no worse" name tns)
            true
            (retimed.Pipeline.clock_mhz >= greedy.Pipeline.clock_mhz -. 1e-6);
          Alcotest.(check int)
            (Printf.sprintf "%s@%.0fns: greedy bits recorded" name tns)
            greedy.Pipeline.latch_bits retimed.Pipeline.greedy_latch_bits)
        [ 3.0; 5.0; 8.0 ])
    [ fir_source, "fir"; acc_source, "acc"; if_else_source, "if_else" ]

let test_retiming_fixpoint () =
  let _, _, p = pipeline_of fir_source "fir" in
  let again = Pipeline.retime p in
  Alcotest.(check int) "no further moves" p.Pipeline.retime_moves
    again.Pipeline.retime_moves;
  Alcotest.(check int) "latch bits stable" p.Pipeline.latch_bits
    again.Pipeline.latch_bits

(* ------------------------------------------------------------------ *)
(* Verify rejects corrupted stagings                                   *)
(* ------------------------------------------------------------------ *)

let expect_pipeline_error needle f =
  match f () with
  | () -> Alcotest.failf "expected Pipeline.Error mentioning %S" needle
  | exception Pipeline.Error msg ->
    let found =
      try
        ignore (Str.search_forward (Str.regexp_string needle) msg 0);
        true
      with Not_found -> false
    in
    Alcotest.(check bool)
      (Printf.sprintf "message %S mentions %S" msg needle)
      true found

let test_verify_backward_edge () =
  let _, _, p = pipeline_of fir_source "fir" in
  Alcotest.(check bool) "needs >= 2 stages" true (p.Pipeline.stage_count >= 2);
  let producer = Hashtbl.create 16 in
  List.iter
    (fun (si : Pipeline.staged_instr) ->
      match si.Pipeline.si.Instr.dst with
      | Some d -> Hashtbl.replace producer d si
      | None -> ())
    p.Pipeline.instrs;
  (* push some producer past a same-stage consumer: the dataflow edge now
     points backward in time *)
  let victim =
    List.find_map
      (fun (si : Pipeline.staged_instr) ->
        List.find_map
          (fun r ->
            match Hashtbl.find_opt producer r with
            | Some prod
              when prod.Pipeline.stage = si.Pipeline.stage
                   && si.Pipeline.stage + 1 < p.Pipeline.stage_count ->
              Some prod
            | _ -> None)
          si.Pipeline.si.Instr.srcs)
      p.Pipeline.instrs
    |> Option.get
  in
  victim.Pipeline.stage <- victim.Pipeline.stage + 1;
  expect_pipeline_error "produced at stage" (fun () -> Pipeline.verify p)

let test_verify_split_feedback () =
  let _, _, p = pipeline_of acc_source "acc" in
  let snx =
    List.find
      (fun (si : Pipeline.staged_instr) ->
        match si.Pipeline.si.Instr.op with
        | Instr.Snx _ -> true
        | _ -> false)
      p.Pipeline.instrs
  in
  (* grow the schedule by one stage, then latch the SNX a stage after its
     LPR: the one-iteration-per-cycle contract is broken *)
  let p2 =
    { p with
      Pipeline.stage_count = p.Pipeline.stage_count + 1;
      stage_delays = Array.append p.Pipeline.stage_delays [| 0.0 |] }
  in
  snx.Pipeline.stage <- snx.Pipeline.stage + 1;
  expect_pipeline_error "latched across stages" (fun () ->
      Pipeline.verify p2)

let test_verify_latch_balance () =
  let _, _, p = pipeline_of fir_source "fir" in
  let p2 = { p with Pipeline.latch_bits = p.Pipeline.latch_bits + 7 } in
  expect_pipeline_error "latch bits out of balance" (fun () ->
      Pipeline.verify p2)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let qcheck_case = QCheck_alcotest.to_alcotest

let prop_dp_matches_interp =
  QCheck.Test.make ~count:80
    ~name:"data path matches the C interpreter on if_else"
    QCheck.(pair (int_range (-2000) 2000) (int_range (-2000) 2000))
    (fun (x1, x2) ->
      let dp = datapath_of if_else_source "if_else" in
      let r =
        Dp_eval.run dp ~inputs:[ "x1", Int64.of_int x1; "x2", Int64.of_int x2 ]
      in
      let o =
        Interp.run_source if_else_source "if_else"
          ~scalars:[ "x1", Int64.of_int x1; "x2", Int64.of_int x2 ]
      in
      List.assoc "x3" r.Dp_eval.outputs
      = List.assoc "x3" o.Interp.pointer_outputs
      && List.assoc "x4" r.Dp_eval.outputs
         = List.assoc "x4" o.Interp.pointer_outputs)

let prop_accumulator_stream_matches =
  QCheck.Test.make ~count:30
    ~name:"accumulator data path matches software over random streams"
    QCheck.(array_of_size (Gen.return 32) (int_range (-10000) 10000))
    (fun data ->
      let dp = datapath_of acc_source "acc" in
      let stream =
        Array.to_list (Array.map (fun v -> [ "A0", Int64.of_int v ]) data)
      in
      let rs = Dp_eval.run_stream dp stream in
      let last = List.nth rs 31 in
      let want = Array.fold_left ( + ) 0 data in
      Int64.equal
        (List.assoc "Tmp0" last.Dp_eval.outputs)
        (Int64.of_int want))

(* ------------------------------------------------------------------ *)

let suites =
  [ "datapath.structure",
    [ Alcotest.test_case "if_else soft/mux/pipe nodes (Figure 6)" `Quick
        test_if_else_structure;
      Alcotest.test_case "mux after branches, pipe alongside" `Quick
        test_if_else_mux_parallel_to_nothing;
      Alcotest.test_case "def-use adjoining invariant" `Quick
        test_adjoining_invariant;
      Alcotest.test_case "straight-line has no hard nodes" `Quick
        test_straightline_no_hard_nodes;
      Alcotest.test_case "nested if" `Quick test_nested_if_structure ];
    "datapath.behaviour",
    [ Alcotest.test_case "if_else evaluation" `Quick test_dp_eval_if_else;
      Alcotest.test_case "speculative division guarded" `Quick
        test_dp_eval_speculative_division;
      Alcotest.test_case "accumulator stream (Figure 7)" `Quick
        test_dp_eval_accumulator_stream;
      Alcotest.test_case "conditional accumulation (mul_acc nd)" `Quick
        test_dp_conditional_accumulator;
      Alcotest.test_case "matches VM evaluation" `Quick test_dp_matches_vm ];
    "datapath.widths",
    [ Alcotest.test_case "comparison is 1 bit" `Quick
        test_widths_comparison_is_one_bit;
      Alcotest.test_case "multiply narrows to operand sum" `Quick
        test_widths_narrowing;
      Alcotest.test_case "add grows one bit" `Quick
        test_widths_add_grows_one_bit;
      Alcotest.test_case "all signals covered" `Quick
        test_widths_all_signals_covered ];
    "datapath.pipeline",
    [ Alcotest.test_case "FIR pipelines" `Quick test_pipeline_fir;
      Alcotest.test_case "feedback fits one stage (SNX latch)" `Quick
        test_pipeline_feedback_single_stage;
      Alcotest.test_case "target delay controls depth" `Quick
        test_pipeline_deeper_with_smaller_target;
      Alcotest.test_case "stage order respects dependencies" `Quick
        test_pipeline_monotone_stages;
      Alcotest.test_case "retiming never spends more latch bits" `Quick
        test_retiming_never_worse;
      Alcotest.test_case "retiming reaches a fixpoint" `Quick
        test_retiming_fixpoint;
      Alcotest.test_case "verify rejects a backward dataflow edge" `Quick
        test_verify_backward_edge;
      Alcotest.test_case "verify rejects a split feedback latch" `Quick
        test_verify_split_feedback;
      Alcotest.test_case "verify rejects unbalanced latch totals" `Quick
        test_verify_latch_balance ];
    "datapath.delay",
    [ Alcotest.test_case "delay grows with operand width" `Quick
        test_delay_width_monotone;
      Alcotest.test_case "constant multiplier folds to shift-adds" `Quick
        test_delay_const_mul_shift_add;
      Alcotest.test_case "constant shifts and masks are wiring" `Quick
        test_delay_const_shift_free ];
    "datapath.timing",
    [ Alcotest.test_case "ASAP/ALAP bracket every instruction" `Quick
        test_timing_mobility ];
    "datapath.properties",
    [ qcheck_case prop_dp_matches_interp;
      qcheck_case prop_accumulator_stream_matches ] ]
