(* Tests for the multi-stage operator model: the staged delay descriptors
   (wide widths, constant-operand special cases, stage-budget
   monotonicity), the wide-operator behavioural models against plain
   int64 arithmetic, the pinned-region pipeline invariants on the modsq
   gallery kernel, and the front-end regressions the wide lift exposed
   (64-bit literals and kinds). *)

module Ast = Roccc_cfront.Ast
module Semant = Roccc_cfront.Semant
module Instr = Roccc_vm.Instr
module Delay = Roccc_datapath.Delay
module Pipeline = Roccc_datapath.Pipeline
module Wide = Roccc_ip_wide.Wide
module Driver = Roccc_core.Driver
module Kernels = Roccc_core.Kernels

let kind ?(signed = true) bits = Ast.make_ikind ~signed bits

(* ---- staged delay descriptors ---- *)

let test_narrow_stays_single_cycle () =
  (* every pre-existing shape (result <= 32 bits) keeps stages = 1 and
     exactly the classic per-stage estimate *)
  List.iter
    (fun (op, k, ws) ->
      let d = Delay.instr_delay op k ws in
      Alcotest.(check int)
        (Instr.opcode_name op ^ " single cycle") 1 d.Delay.stages;
      Alcotest.(check (float 1e-9))
        (Instr.opcode_name op ^ " per-stage = classic")
        (Delay.instr_delay_ns op k ws)
        d.Delay.per_stage_ns)
    [ Instr.Add, kind 32, [ 32; 32 ];
      Instr.Mul, kind 16, [ 16; 16 ];
      Instr.Mul, kind 32, [ 16; 16 ];
      Instr.Sub, kind 32, [ 31; 31 ];
      Instr.Band, kind 64, [ 31; 31 ];  (* wide kind, narrow result *)
      Instr.Shr, kind ~signed:false 64, [ 62; 6 ] ]

let test_wide_mul_is_staged () =
  let d = Delay.instr_delay Instr.Mul (kind ~signed:false 64) [ 31; 31 ] in
  Alcotest.(check bool) "wide mul takes > 1 stage" true (d.Delay.stages > 1);
  Alcotest.(check bool) "per-stage delay positive" true
    (d.Delay.per_stage_ns > 0.0);
  (* the decomposed region's stage delay must beat a flat single-cycle
     64-bit multiplier, else staging it is pointless *)
  let flat = Delay.instr_delay_ns Instr.Mul (kind 32) [ 32; 32 ] in
  Alcotest.(check bool) "staged beats flat 32x32 estimate" true
    (d.Delay.per_stage_ns < Delay.total_ns d +. flat);
  let add = Delay.instr_delay Instr.Add (kind ~signed:false 64) [ 64; 64 ] in
  Alcotest.(check bool) "wide add staged" true (add.Delay.stages > 1)

let test_constant_operands_stay_cheap () =
  (* a wide multiply by a constant is a shift-add tree, and a power of
     two is pure wiring — stages collapse accordingly *)
  let k = kind ~signed:false 64 in
  let pow2 =
    Delay.instr_delay ~const_operands:[ None; Some 4096L ] Instr.Mul k
      [ 62; 13 ]
  in
  Alcotest.(check int) "x * 4096 is wiring: one stage" 1 pow2.Delay.stages;
  let shift =
    Delay.instr_delay ~const_operands:[ None; Some 31L ] Instr.Shr k [ 62; 5 ]
  in
  Alcotest.(check int) "constant shift stays one stage" 1 shift.Delay.stages;
  Alcotest.(check (float 1e-9)) "constant shift is free" 0.0
    shift.Delay.per_stage_ns;
  let const_mul =
    Delay.instr_delay ~const_operands:[ None; Some 2147483647L ] Instr.Mul k
      [ 33; 31 ]
  in
  let var_mul = Delay.instr_delay Instr.Mul k [ 33; 31 ] in
  Alcotest.(check bool) "constant multiplier no deeper than variable" true
    (const_mul.Delay.stages <= var_mul.Delay.stages)

let test_stage_budget_monotone () =
  (* a larger budget never increases the per-stage delay, and the budget
     caps the region *)
  let k = kind ~signed:false 64 in
  List.iter
    (fun decomp ->
      let natural = Delay.instr_delay ~decomp Instr.Mul k [ 32; 32 ] in
      let prev = ref infinity in
      for budget = 1 to natural.Delay.stages + 2 do
        let d = Delay.instr_delay ~stage_budget:budget ~decomp Instr.Mul k
            [ 32; 32 ]
        in
        Alcotest.(check bool)
          (Printf.sprintf "budget %d respected (%s)" budget
             (Delay.decomp_name decomp))
          true
          (d.Delay.stages <= max budget 1);
        Alcotest.(check bool)
          (Printf.sprintf "budget %d per-stage <= budget %d (%s)" budget
             (budget - 1) (Delay.decomp_name decomp))
          true
          (d.Delay.per_stage_ns <= !prev +. 1e-9);
        prev := d.Delay.per_stage_ns
      done;
      let uncapped = Delay.instr_delay ~stage_budget:0 ~decomp Instr.Mul k
          [ 32; 32 ]
      in
      Alcotest.(check int)
        ("budget 0 = natural depth (" ^ Delay.decomp_name decomp ^ ")")
        natural.Delay.stages uncapped.Delay.stages)
    Delay.all_decomps

(* ---- behavioural models vs int64 ---- *)

let boundary_values =
  [ 0L; 1L; -1L; 2L; -2L; 2147483647L; 2147483648L; -2147483648L;
    4611686018427387904L; Int64.max_int; Int64.min_int;
    0x0123456789ABCDEFL; -81985529216486896L ]

let prng seed =
  let state = ref seed in
  fun () ->
    state := Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L;
    !state

let test_wide_models_exact () =
  let next = prng 42L in
  let pairs =
    List.concat_map (fun a -> List.map (fun b -> a, b) boundary_values)
      boundary_values
    @ List.init 200 (fun _ -> next (), next ())
  in
  List.iter
    (fun (a, b) ->
      Alcotest.(check int64)
        (Printf.sprintf "csa_mul %Ld %Ld" a b)
        (Int64.mul a b) (Wide.csa_mul a b);
      Alcotest.(check int64)
        (Printf.sprintf "addtree_mul %Ld %Ld" a b)
        (Int64.mul a b) (Wide.addtree_mul a b);
      Alcotest.(check int64)
        (Printf.sprintf "block_add %Ld %Ld" a b)
        (Int64.add a b) (Wide.block_add a b))
    pairs

let test_csa_reduce_accumulate () =
  let next = prng 7L in
  for _ = 1 to 100 do
    let vs = List.init 7 (fun _ -> next ()) in
    let want = List.fold_left Int64.add 5L vs in
    Alcotest.(check int64) "carry-save accumulator = acc + sum" want
      (Wide.csa_accumulate 5L vs)
  done

(* ---- pinned regions through the pipeliner ---- *)

let compiled_modsq =
  lazy (Driver.compile ~entry:Kernels.modsq.Kernels.entry Kernels.modsq_source)

let test_modsq_has_pinned_regions () =
  let c = Lazy.force compiled_modsq in
  let p = c.Driver.pipeline in
  let regions = Pipeline.staged_regions p in
  Alcotest.(check bool) "at least one multi-stage region" true (regions <> []);
  Alcotest.(check bool) "a wide multiply is among them" true
    (List.exists (fun (i, _, _) -> i.Instr.op = Instr.Mul) regions);
  List.iter
    (fun (i, s, k) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s region inside schedule" (Instr.opcode_name i.Instr.op))
        true
        (s >= 0 && k > 1 && s + k <= p.Pipeline.stage_count))
    regions;
  Pipeline.verify p

let test_retiming_preserves_pinned_stages () =
  let c = Lazy.force compiled_modsq in
  let p = c.Driver.pipeline in
  let greedy =
    Pipeline.build ~target_ns:c.Driver.options.Driver.target_ns ~retime:false
      p.Pipeline.dp p.Pipeline.widths
  in
  let key q =
    List.sort compare
      (List.map
         (fun (i, s, k) -> i.Instr.dst, Instr.opcode_name i.Instr.op, s, k)
         (Pipeline.staged_regions q))
  in
  Alcotest.(check bool) "region starts survive retiming" true
    (key p = key greedy);
  Alcotest.(check int) "multi_stage_ops agrees" (Pipeline.multi_stage_ops p)
    (List.length (Pipeline.staged_regions p))

let test_modsq_hw_equals_sw () =
  let b = Kernels.modsq in
  let c = Lazy.force compiled_modsq in
  let arrays = b.Kernels.arrays () in
  Alcotest.(check (list string)) "modsq hardware = software" []
    (Driver.verify ~scalars:b.Kernels.scalars ~arrays c)

let test_stage_budget_caps_pipeline () =
  (* compiling with a tight budget shortens the wide regions (and the
     pipeline), at a slower per-stage clock *)
  let natural = Lazy.force compiled_modsq in
  let budgeted =
    Driver.compile
      ~options:{ Driver.default_options with Driver.stage_budget = 2 }
      ~entry:Kernels.modsq.Kernels.entry Kernels.modsq_source
  in
  List.iter
    (fun (i, _, k) ->
      Alcotest.(check bool)
        (Instr.opcode_name i.Instr.op ^ " region within budget") true (k <= 2))
    (Pipeline.staged_regions budgeted.Driver.pipeline);
  Alcotest.(check bool) "budgeted pipeline no longer than natural" true
    (budgeted.Driver.pipeline.Pipeline.stage_count
     <= natural.Driver.pipeline.Pipeline.stage_count);
  let arrays = Kernels.modsq.Kernels.arrays () in
  Alcotest.(check (list string)) "budgeted modsq still hw = sw" []
    (Driver.verify ~arrays budgeted)

let test_addtree_decomp_compiles () =
  let c =
    Driver.compile
      ~options:{ Driver.default_options with Driver.decomp = Delay.Addtree }
      ~entry:Kernels.modsq.Kernels.entry Kernels.modsq_source
  in
  Alcotest.(check bool) "addtree modsq still staged" true
    (Pipeline.staged_regions c.Driver.pipeline <> []);
  let arrays = Kernels.modsq.Kernels.arrays () in
  Alcotest.(check (list string)) "addtree modsq hw = sw" []
    (Driver.verify ~arrays c)

(* ---- front-end regressions (satellite: the dead Const conditional) ---- *)

let empty_env () : Semant.env =
  { Semant.vars = Hashtbl.create 4;
    functions = Hashtbl.create 4;
    luts = Hashtbl.create 4 }

let test_const_typing () =
  let t v = Semant.type_of_expr (empty_env ()) (Ast.Const v) in
  let check name want v =
    let k = t v in
    Alcotest.(check (pair bool int)) name want
      (k.Ast.signed, k.Ast.bits)
  in
  check "small positive literal is int32" (true, 32) 5L;
  check "INT_MAX is int32" (true, 32) 2147483647L;
  (* the regression: 2^31 used to fall into the signed-int32 arm *)
  check "2^31 is unsigned 32" (false, 32) 2147483648L;
  check "2^35 is unsigned 36" (false, 36) 34359738368L;
  check "small negative literal is int32" (true, 32) (-5L);
  check "INT_MIN is int32" (true, 32) (-2147483648L);
  (* the other half of the regression: a wide negative literal used to
     collapse to 32 bits *)
  check "-2^35 is signed 36" (true, 36) (-34359738368L);
  check "min_int is signed 64" (true, 64) Int64.min_int

let test_wide_kinds_accepted () =
  (* uint33..uint64 / int64 declarations parse and make_ikind admits them *)
  let k = Ast.make_ikind ~signed:false 64 in
  Alcotest.(check int) "64-bit kind" 64 k.Ast.bits;
  let src =
    "void widen(uint40 A[4], uint64 C[4]) {\n\
    \  int i;\n\
    \  for (i = 0; i < 4; i++) {\n\
    \    uint64 t;\n\
    \    t = A[i] * 3;\n\
    \    C[i] = t + A[i];\n\
    \  }\n\
     }\n"
  in
  let c = Driver.compile ~entry:"widen" src in
  let arrays =
    [ "A", Array.init 4 (fun i -> Int64.of_int ((i * 98765432) + 1)) ]
  in
  Alcotest.(check (list string)) "wide kinds hw = sw" []
    (Driver.verify ~arrays c)

let suites =
  [ ( "wide.delay",
      [ Alcotest.test_case "narrow shapes stay single-cycle" `Quick
          test_narrow_stays_single_cycle;
        Alcotest.test_case "wide mul/add are staged" `Quick
          test_wide_mul_is_staged;
        Alcotest.test_case "constant operands stay cheap" `Quick
          test_constant_operands_stay_cheap;
        Alcotest.test_case "stage budget is monotone" `Quick
          test_stage_budget_monotone ] );
    ( "wide.models",
      [ Alcotest.test_case "csa/addtree/block = int64 arithmetic" `Quick
          test_wide_models_exact;
        Alcotest.test_case "carry-save accumulator" `Quick
          test_csa_reduce_accumulate ] );
    ( "wide.pipeline",
      [ Alcotest.test_case "modsq has pinned regions" `Quick
          test_modsq_has_pinned_regions;
        Alcotest.test_case "retiming preserves pinned stages" `Quick
          test_retiming_preserves_pinned_stages;
        Alcotest.test_case "modsq hardware = software" `Quick
          test_modsq_hw_equals_sw;
        Alcotest.test_case "stage budget caps regions" `Quick
          test_stage_budget_caps_pipeline;
        Alcotest.test_case "addtree decomposition compiles" `Quick
          test_addtree_decomp_compiles ] );
    ( "wide.front",
      [ Alcotest.test_case "const literal typing" `Quick test_const_typing;
        Alcotest.test_case "wide kinds accepted end-to-end" `Quick
          test_wide_kinds_accepted ] ) ]
