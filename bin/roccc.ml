(** The roccc command-line compiler.

    roccc compile <file.c> -e <entry> [-o out.vhd] [--dump-stage ...]
    roccc simulate <file.c> -e <entry> --array A=1,2,3 --scalar x=5
    roccc report <file.c> -e <entry>
    roccc bench <name>         (compile + simulate a built-in Table 1 kernel)
    roccc batch <files|dirs> [--jobs N] [--cache] [--trace out.json]
    roccc batch <file.c> -e <entry> --sweep   (unroll x bus option grid)
    roccc tune <file.c|kernel> --objective max-mhz --slice-budget 4000
*)

open Cmdliner
module Driver = Roccc_core.Driver
module Kernels = Roccc_core.Kernels
module Service = Roccc_service.Service
module Svc_cache = Roccc_service.Cache
module Svc_trace = Roccc_service.Trace
module Server = Roccc_service.Server
module Net = Roccc_net.Net
module Farm = Roccc_service.Farm
module Faults = Roccc_service.Faults

(* Flag misuse is a usage error: explain and exit 2, the Cmdliner
   convention, instead of surfacing a crash or silently "working". *)
let usage_error msg =
  Printf.eprintf "roccc: %s\n" msg;
  exit 2

let checked r = match r with Ok v -> v | Error msg -> usage_error msg

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let with_errors f =
  try f () with
  | Driver.Error msg ->
    Printf.eprintf "roccc: %s\n" msg;
    exit 1
  | Roccc_cfront.Parser.Error (msg, line, col) ->
    Printf.eprintf "roccc: parse error at %d:%d: %s\n" line col msg;
    exit 1
  | Roccc_cfront.Semant.Error msg ->
    Printf.eprintf "roccc: %s\n" msg;
    exit 1
  | Roccc_vm.Instr.Vm_error msg ->
    Printf.eprintf "roccc: vm error: %s\n" msg;
    exit 1
  | Roccc_cfront.Interp.Error msg ->
    Printf.eprintf "roccc: interpreter: %s\n" msg;
    exit 1
  | Net.Error msg ->
    Printf.eprintf "roccc: network: %s\n" msg;
    exit 1
  | Sys_error msg ->
    Printf.eprintf "roccc: %s\n" msg;
    exit 1

(* ---- common args ---- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.c")

let entry_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "e"; "entry" ] ~docv:"FUNC" ~doc:"Kernel function to compile.")

let target_ns_arg =
  Arg.(
    value & opt float Roccc_datapath.Pipeline.default_target_ns
    & info [ "target-ns" ] ~doc:"Pipeline stage delay budget (ns).")

let bus_arg =
  Arg.(
    value & opt int 1
    & info [ "bus" ] ~doc:"Memory bus width in elements per access.")

let no_widths_arg =
  Arg.(
    value & flag
    & info [ "no-width-inference" ]
        ~doc:"Disable bit-width inference (keep declared C widths).")

let unroll_inner_arg =
  Arg.(
    value & opt int 0
    & info [ "unroll-inner" ]
        ~doc:"Fully unroll inner loops up to this trip count.")

let stage_budget_arg =
  Arg.(
    value & opt int Roccc_datapath.Delay.default_stage_budget
    & info [ "stage-budget" ]
        ~doc:
          "Cap the stage count of a multi-stage (wide, >32-bit) operator \
           region; 0 means the decomposition's natural depth. \
           Single-cycle kernels are unaffected.")

let decomp_arg =
  Arg.(
    value
    & opt string
        (Roccc_datapath.Delay.decomp_name Roccc_datapath.Delay.default_decomp)
    & info [ "decomp" ] ~docv:"NAME"
        ~doc:
          "Wide-multiplier decomposition: $(b,csa) (partial products + \
           carry-save 3:2 compression tree) or $(b,addtree) (binary \
           adder tree).")

let decomp_of_flag (name : string) : Roccc_datapath.Delay.decomp =
  match Roccc_datapath.Delay.decomp_of_string name with
  | Some d -> d
  | None ->
    usage_error
      (Printf.sprintf "--decomp: unknown decomposition %s (expected %s)" name
         (String.concat " or "
            (List.map Roccc_datapath.Delay.decomp_name
               Roccc_datapath.Delay.all_decomps)))

let options_of target_ns bus no_widths unroll_inner stage_budget decomp =
  let target_ns =
    checked (Server.check_positive_float ~flag:"--target-ns" target_ns)
  in
  let bus = checked (Server.check_positive_int ~flag:"--bus" bus) in
  if unroll_inner < 0 then
    usage_error
      (Printf.sprintf "--unroll-inner expects a non-negative integer, got %d"
         unroll_inner);
  if stage_budget < 0 then
    usage_error
      (Printf.sprintf "--stage-budget expects a non-negative integer, got %d"
         stage_budget);
  { Driver.default_options with
    Driver.target_ns;
    bus_elements = bus;
    infer_widths = not no_widths;
    unroll_inner_max = unroll_inner;
    stage_budget;
    decomp = decomp_of_flag decomp }

(* ---- pass-manager configuration ---- *)

let verify_ir_arg =
  Arg.(
    value & flag
    & info [ "verify-ir" ]
        ~doc:
          "Run each pass's IR invariant verifier after the pass (also \
           enabled by ROCCC_VERIFY_IR=1).")

let differential_arg =
  Arg.(
    value & flag
    & info [ "differential" ]
        ~doc:
          "Co-run the C interpreter, VM evaluator and data-path evaluator \
           on deterministic vectors after layer boundaries, reporting the \
           first diverging pass (also ROCCC_DIFFERENTIAL=1).")

let passes_arg =
  Arg.(
    value & opt (some (list string)) None
    & info [ "passes" ] ~docv:"PASS,..."
        ~doc:
          "Run only these optional passes (required passes always run). \
           See the pass names in $(b,--dump passes).")

let disable_pass_arg =
  Arg.(
    value & opt_all string []
    & info [ "disable-pass" ] ~docv:"PASS"
        ~doc:"Skip an optional pass (repeatable).")

let dump_after_arg =
  Arg.(
    value & opt_all string []
    & info [ "dump-after" ] ~docv:"PASS"
        ~doc:"Print the active IR after PASS runs (repeatable).")

let config_of verify_ir differential passes disable dump_after =
  let base = Roccc_core.Pass.default_config () in
  { base with
    Roccc_core.Pass.verify_ir = verify_ir || base.Roccc_core.Pass.verify_ir;
    differential = differential || base.Roccc_core.Pass.differential;
    only_passes = passes;
    disabled_passes = disable;
    dump_after }

let config_term =
  Term.(
    const config_of $ verify_ir_arg $ differential_arg $ passes_arg
    $ disable_pass_arg $ dump_after_arg)

let kv_list_conv =
  let parse s =
    match String.index_opt s '=' with
    | Some i ->
      let name = String.sub s 0 i in
      let values =
        String.sub s (i + 1) (String.length s - i - 1)
        |> String.split_on_char ','
        |> List.map (fun v ->
               match Int64.of_string_opt (String.trim v) with
               | Some x -> x
               | None -> failwith ("bad integer " ^ v))
      in
      Ok (name, Array.of_list values)
    | None -> Error (`Msg "expected NAME=v1,v2,...")
  in
  let print ppf (name, values) =
    Format.fprintf ppf "%s=%s" name
      (String.concat ","
         (Array.to_list values |> List.map Int64.to_string))
  in
  Arg.conv (parse, print)

(* ---- compile ---- *)

let compile_cmd =
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"DIR"
          ~doc:"Write the VHDL design (and ROM init files) into DIR.")
  in
  let dump_arg =
    Arg.(
      value
      & opt_all (enum
                   [ "kernel", `Kernel; "transformed", `Transformed;
                     "dp-function", `Dp; "vm", `Vm; "datapath", `Datapath;
                     "dot", `Dot; "pipeline", `Pipeline; "vhdl", `Vhdl;
                     "passes", `Passes ])
          []
      & info [ "dump" ] ~docv:"STAGE"
          ~doc:
            "Print an intermediate stage: kernel, transformed, dp-function, \
             vm, datapath, dot, pipeline, vhdl, passes.")
  in
  (* --entry naming a [pipeline x = a -> b;] declaration compiles the
     process network instead of a single kernel: plan every stage, size
     the channels, co-simulate against the sequential composition, and
     (with -o) emit the network top level next to the stage designs. *)
  let run_network ~source ~config ~options ~out name =
    let net = Net.plan ~config ~options ~name source in
    print_string (Net.describe net);
    let s0 = List.hd net.Net.net_stages in
    let arrays =
      [ s0.Net.sg_in_array,
        Array.init s0.Net.sg_elements_in (fun i ->
            Int64.of_int ((5 * i) - 17 + (i * i mod 11))) ]
    in
    (match Net.verify ~arrays net with
    | [] ->
      print_endline "co-simulation: network output == sequential composition"
    | diffs ->
      List.iter (Printf.eprintf "roccc: co-simulation mismatch: %s\n") diffs;
      exit 1);
    match out with
    | None -> ()
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let files =
        ((name ^ "_net.vhd"), Net.network_vhdl net)
        :: List.concat_map
             (fun (sg : Net.stage) -> Service.vhdl_files sg.Net.sg_compiled)
             net.Net.net_stages
      in
      List.iter
        (fun (fname, contents) ->
          let path = Filename.concat dir fname in
          let oc = open_out path in
          output_string oc contents;
          close_out oc;
          Printf.printf "wrote %s\n" path)
        files
  in
  let run file entry target_ns bus no_widths unroll_inner stage_budget decomp
      out dumps testbench config =
    with_errors (fun () ->
        let source = read_file file in
        let options =
          options_of target_ns bus no_widths unroll_inner stage_budget decomp
        in
        let is_network =
          List.exists
            (fun (pl : Roccc_cfront.Ast.pipeline_decl) ->
              String.equal pl.Roccc_cfront.Ast.pl_name entry)
            (try Net.pipelines_of_source source with Net.Error _ -> [])
        in
        if is_network then run_network ~source ~config ~options ~out entry
        else begin
        let c = Driver.compile ~config ~options ~entry source in
        ignore testbench;
        List.iter
          (fun d ->
            match d with
            | `Kernel ->
              print_endline (Roccc_hir.Kernel.describe c.Driver.kernel)
            | `Transformed ->
              print_endline
                (Roccc_cfront.Pretty.func_to_string
                   c.Driver.kernel.Roccc_hir.Kernel.transformed)
            | `Dp ->
              print_endline
                (Roccc_cfront.Pretty.func_to_string
                   c.Driver.kernel.Roccc_hir.Kernel.dp)
            | `Vm -> print_endline (Roccc_vm.Proc.to_string c.Driver.proc)
            | `Datapath ->
              print_endline (Roccc_datapath.Graph.to_string c.Driver.dp)
            | `Dot -> print_endline (Roccc_datapath.Graph.to_dot c.Driver.dp)
            | `Pipeline ->
              print_endline (Roccc_datapath.Pipeline.describe c.Driver.pipeline)
            | `Vhdl ->
              print_endline (Roccc_vhdl.Ast.to_string c.Driver.design)
            | `Passes -> print_endline (Driver.pass_pipeline_figure c))
          dumps;
        (match out with
        | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          List.iter
            (fun (name, contents) ->
              let path = Filename.concat dir name in
              let oc = open_out path in
              output_string oc contents;
              close_out oc;
              Printf.printf "wrote %s\n" path)
            (Roccc_vhdl.Ast.to_files c.Driver.design
            @ (match c.Driver.system_vhdl with
              | Some text -> [ c.Driver.entry ^ "_system.vhd", text ]
              | None -> [])
            @
            match testbench with
            | Some spec ->
              let arrays, scalars = spec in
              [ c.Driver.entry ^ "_tb.vhd",
                Roccc_core.Testbench.generate ~scalars ~arrays c ]
            | None -> [])
        | None -> ());
        if dumps = [] && out = None then print_string (Driver.report c)
        end)
  in
  let testbench_arg =
    Arg.(
      value
      & opt_all kv_list_conv []
      & info [ "tb-array" ] ~docv:"NAME=v1,v2,..."
          ~doc:
            "Also emit a self-checking testbench (<entry>_tb.vhd) driving \
             the data path with this input array (repeatable).")
  in
  let run' file entry target_ns bus no_widths unroll_inner stage_budget decomp
      out dumps tb_arrays config =
    let testbench =
      if tb_arrays = [] then None else Some (tb_arrays, [])
    in
    run file entry target_ns bus no_widths unroll_inner stage_budget decomp
      out dumps testbench config
  in
  let term =
    Term.(
      const run' $ file_arg $ entry_arg $ target_ns_arg $ bus_arg
      $ no_widths_arg $ unroll_inner_arg $ stage_budget_arg $ decomp_arg
      $ out_arg $ dump_arg $ testbench_arg $ config_term)
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a C kernel to VHDL.") term

(* ---- simulate ---- *)

let simulate_cmd =
  let array_arg =
    Arg.(
      value & opt_all kv_list_conv []
      & info [ "array" ] ~docv:"NAME=v1,v2,..."
          ~doc:"Input array contents (repeatable).")
  in
  let scalar_arg =
    Arg.(
      value & opt_all kv_list_conv []
      & info [ "scalar" ] ~docv:"NAME=v"
          ~doc:"Scalar live-in value (repeatable).")
  in
  let vcd_arg =
    Arg.(
      value & opt (some string) None
      & info [ "vcd" ] ~docv:"FILE"
          ~doc:"Write a VCD waveform of the run to FILE (view in GTKWave).")
  in
  let run file entry target_ns bus no_widths unroll_inner stage_budget decomp
      arrays scalars vcd =
    with_errors (fun () ->
        let source = read_file file in
        let options =
          options_of target_ns bus no_widths unroll_inner stage_budget decomp
        in
        let c = Driver.compile ~options ~entry source in
        let scalars =
          List.map
            (fun (n, (vs : int64 array)) ->
              n, if Array.length vs > 0 then vs.(0) else 0L)
            scalars
        in
        let r = Driver.simulate ~scalars ~arrays c in
        Printf.printf "cycles: %d (latency %d, %d launches)\n"
          r.Roccc_hw.Engine.cycles r.Roccc_hw.Engine.pipeline_latency
          r.Roccc_hw.Engine.launches;
        Printf.printf "memory: %d reads, %d writes (reuse %.2fx)\n"
          r.Roccc_hw.Engine.memory_reads r.Roccc_hw.Engine.memory_writes
          r.Roccc_hw.Engine.reuse_ratio;
        List.iter
          (fun (name, data) ->
            Printf.printf "%s = [%s]\n" name
              (String.concat "; "
                 (Array.to_list data |> List.map Int64.to_string)))
          r.Roccc_hw.Engine.output_arrays;
        List.iter
          (fun (name, v) -> Printf.printf "%s = %Ld\n" name v)
          r.Roccc_hw.Engine.scalar_outputs;
        (match vcd with
        | Some path ->
          let dump =
            Roccc_hw.Vcd.of_simulation ~design:c.Driver.entry c.Driver.kernel
              r
          in
          let oc = open_out path in
          output_string oc (Roccc_hw.Vcd.render dump);
          close_out oc;
          Printf.printf "wrote %s\n" path
        | None -> ());
        let diffs = Driver.verify ~scalars ~arrays c in
        if diffs = [] then print_endline "co-simulation: hardware = software"
        else begin
          print_endline "co-simulation MISMATCH:";
          List.iter print_endline diffs;
          exit 1
        end)
  in
  let term =
    Term.(
      const run $ file_arg $ entry_arg $ target_ns_arg $ bus_arg
      $ no_widths_arg $ unroll_inner_arg $ stage_budget_arg $ decomp_arg
      $ array_arg $ scalar_arg $ vcd_arg)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Compile and run a kernel on the cycle-accurate execution model.")
    term

(* ---- compile-all ---- *)

let compile_all_cmd =
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"DIR"
          ~doc:"Write each kernel's VHDL into DIR.")
  in
  let run file out =
    with_errors (fun () ->
        let source = read_file file in
        let oks, errs = Driver.compile_all source in
        List.iter
          (fun (name, c) ->
            Printf.printf
              "%-20s %5d slices @ %6.1f MHz, %d-stage pipeline, %d latch \
               bits\n"
              name c.Driver.area.Roccc_fpga.Area.slices
              c.Driver.area.Roccc_fpga.Area.clock_mhz
              (Roccc_datapath.Pipeline.latency c.Driver.pipeline)
              c.Driver.pipeline.Roccc_datapath.Pipeline.latch_bits;
            match out with
            | Some dir ->
              if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
              List.iter
                (fun (fname, contents) ->
                  let path = Filename.concat dir fname in
                  let oc = open_out path in
                  output_string oc contents;
                  close_out oc)
                (Roccc_vhdl.Ast.to_files c.Driver.design)
            | None -> ())
          oks;
        List.iter
          (fun (name, msg) -> Printf.printf "%-20s FAILED: %s\n" name msg)
          errs;
        if oks = [] && errs <> [] then exit 1)
  in
  Cmd.v
    (Cmd.info "compile-all"
       ~doc:"Compile every kernel function (array/pointer params) in a file.")
    Term.(const run $ file_arg $ out_arg)

(* ---- profile ---- *)

let profile_cmd =
  let array_arg =
    Arg.(
      value & opt_all kv_list_conv []
      & info [ "array" ] ~docv:"NAME=v1,v2,..."
          ~doc:"Input array contents (repeatable).")
  in
  let scalar_arg =
    Arg.(
      value & opt_all kv_list_conv []
      & info [ "scalar" ] ~docv:"NAME=v"
          ~doc:"Scalar argument (repeatable).")
  in
  let run file entry arrays scalars =
    with_errors (fun () ->
        let source = read_file file in
        let scalars =
          List.map
            (fun (n, (vs : int64 array)) ->
              n, if Array.length vs > 0 then vs.(0) else 0L)
            scalars
        in
        match
          Roccc_core.Profile.analyze ~scalars ~arrays ~entry source
        with
        | p -> print_string (Roccc_core.Profile.report p)
        | exception Roccc_core.Profile.Error msg ->
          Printf.eprintf "roccc: %s\n" msg;
          exit 1)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a program through the interpreter and rank its loops by \
          dynamic operation count (hardware-candidate identification).")
    Term.(const run $ file_arg $ entry_arg $ array_arg $ scalar_arg)

(* ---- bench ---- *)

let bench_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL")
  in
  let run name =
    with_errors (fun () ->
        match Kernels.find name with
        | None ->
          Printf.eprintf "unknown kernel %s; available: %s\n" name
            (String.concat ", "
               (List.map
                  (fun b -> b.Kernels.bench_name)
                  Kernels.gallery));
          exit 1
        | Some b ->
          let c, r, diffs = Kernels.run b in
          print_string (Driver.report c);
          Printf.printf "simulation: %d cycles, %d launches, reuse %.2fx\n"
            r.Roccc_hw.Engine.cycles r.Roccc_hw.Engine.launches
            r.Roccc_hw.Engine.reuse_ratio;
          if diffs = [] then print_endline "co-simulation: hardware = software"
          else begin
            List.iter print_endline diffs;
            exit 1
          end)
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Compile and simulate a built-in Table 1 kernel.")
    (Term.(const run $ name_arg))

(* ---- batch ---- *)

let batch_cmd =
  let paths_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"FILE.c|DIR")
  in
  let table1_arg =
    Arg.(
      value & flag
      & info [ "table1" ]
          ~doc:"Enqueue the nine built-in Table 1 kernels as jobs.")
  in
  let jobs_arg =
    Arg.(
      value & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains; 0 or omitted means auto (the machine's recommended count).")
  in
  let cache_arg =
    Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:
            "Memoize stage outputs content-addressed on (source, entry, \
             options), persisting finished artifacts under the cache \
             directory.")
  in
  let cache_dir_arg =
    Arg.(
      value & opt string Svc_cache.default_disk_dir
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Disk cache location (with $(b,--cache)).")
  in
  let trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write per-pass spans and batch metadata as Chrome trace_event \
             JSON (view at chrome://tracing or ui.perfetto.dev).")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"DIR"
          ~doc:"Write each job's VHDL into DIR/<job-label>/.")
  in
  let sweep_arg =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "Design-space sweep: compile the single given kernel under the \
             grid of $(b,--sweep-unroll) x $(b,--sweep-bus) options \
             (requires one FILE.c and $(b,-e)).")
  in
  let sweep_entry_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "e"; "entry" ] ~docv:"FUNC"
          ~doc:"Kernel function for $(b,--sweep).")
  in
  let sweep_unroll_arg =
    Arg.(
      value & opt (list int) [ 1; 2; 4 ]
      & info [ "sweep-unroll" ] ~docv:"N,..."
          ~doc:"Outer-loop unroll factors for the sweep grid.")
  in
  let sweep_bus_arg =
    Arg.(
      value & opt (list int) [ 1; 2; 4 ]
      & info [ "sweep-bus" ] ~docv:"N,..."
          ~doc:"Memory bus widths (elements) for the sweep grid.")
  in
  let sweep_target_ns_arg =
    Arg.(
      value & opt (list float) []
      & info [ "sweep-target-ns" ] ~docv:"NS,..."
          ~doc:
            "Clock targets (combinational ns per stage) as a third sweep \
             axis; empty (default) sweeps only $(b,--target-ns).")
  in
  let c_files_of_dir dir =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".c")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
  in
  (* One job per kernel-eligible function of each file; an unparseable file
     still becomes a job so its error is reported per-job, not fatally. *)
  let jobs_of_file options path =
    let source = read_file path in
    let base = Filename.remove_extension (Filename.basename path) in
    match Driver.eligible_entries source with
    | [] -> []
    | [ entry ] ->
      [ { Service.label = base ^ ":" ^ entry; source; entry; options;
          luts = [] } ]
    | entries ->
      List.map
        (fun entry ->
          { Service.label = base ^ ":" ^ entry; source; entry; options;
            luts = [] })
        entries
    | exception Driver.Error _ ->
      [ { Service.label = base; source; entry = "?"; options; luts = [] } ]
  in
  let run paths table1 target_ns bus no_widths unroll_inner stage_budget
      decomp jobs use_cache cache_dir trace_out out sweep sweep_entry
      sweep_unroll sweep_bus sweep_target config =
    with_errors (fun () ->
        let jobs =
          match jobs with
          | None -> 0 (* auto: the machine's recommended domain count *)
          | Some n -> checked (Server.check_jobs ~flag:"--jobs" n)
        in
        let options =
          options_of target_ns bus no_widths unroll_inner stage_budget decomp
        in
        (* Sweep axes: bogus values die here with a friendly message;
           repeated points are compiled once, not twice. *)
        let sweep_unroll =
          checked
            (Server.check_positive_int_list ~flag:"--sweep-unroll" sweep_unroll)
        in
        let sweep_bus =
          checked (Server.check_positive_int_list ~flag:"--sweep-bus" sweep_bus)
        in
        let sweep_target =
          if sweep_target = [] then []
          else
            checked
              (Server.check_positive_float_list ~flag:"--sweep-target-ns"
                 sweep_target)
        in
        let files =
          List.concat_map
            (fun p ->
              if not (Sys.file_exists p) then begin
                Printf.eprintf "roccc batch: no such file or directory: %s\n" p;
                exit 2
              end
              else if Sys.is_directory p then c_files_of_dir p
              else [ p ])
            paths
        in
        let batch_jobs =
          if sweep then begin
            let file, entry =
              match files, sweep_entry with
              | [ f ], Some e -> f, e
              | _ ->
                Printf.eprintf
                  "roccc batch --sweep needs exactly one FILE.c and -e FUNC\n";
                exit 2
            in
            Service.sweep_jobs ~base:options ~target_ns:sweep_target
              ~source:(read_file file) ~entry ~unroll_factors:sweep_unroll
              ~bus_widths:sweep_bus ()
          end
          else
            (if table1 then Service.table1_jobs () else [])
            @ List.concat_map (jobs_of_file options) files
        in
        if batch_jobs = [] then begin
          Printf.eprintf
            "roccc batch: no jobs (give FILE.c/DIR arguments, --table1, or \
             --sweep)\n";
          exit 2
        end;
        let cache =
          if use_cache then Some (Svc_cache.create ~disk_dir:cache_dir ())
          else None
        in
        let trace = Option.map (fun _ -> Svc_trace.create ()) trace_out in
        let report =
          Service.run_batch ?cache ~config ?trace ~num_domains:jobs batch_jobs
        in
        print_endline (Service.summary report);
        (match out with
        | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let written =
            List.fold_left
              (fun n ((j : Service.job), (s : Service.success)) ->
                ignore j;
                let jdir = Filename.concat dir s.Service.r_label in
                if not (Sys.file_exists jdir) then Sys.mkdir jdir 0o755;
                List.iter
                  (fun (name, contents) ->
                    let oc = open_out (Filename.concat jdir name) in
                    output_string oc contents;
                    close_out oc)
                  s.Service.r_vhdl;
                n + List.length s.Service.r_vhdl)
              0 (Service.successes report)
          in
          Printf.printf "wrote %d file(s) under %s\n" written dir
        | None -> ());
        (match trace_out, trace with
        | Some path, Some tr ->
          let oc = open_out path in
          output_string oc
            (Svc_trace.to_chrome_json ~meta:(Service.trace_meta report) tr);
          close_out oc;
          Printf.printf "wrote %s\n" path
        | _ -> ());
        if Service.successes report = [] then exit 1)
  in
  let term =
    Term.(
      const run $ paths_arg $ table1_arg $ target_ns_arg $ bus_arg
      $ no_widths_arg $ unroll_inner_arg $ stage_budget_arg $ decomp_arg
      $ jobs_arg $ cache_arg
      $ cache_dir_arg $ trace_arg $ out_arg $ sweep_arg $ sweep_entry_arg
      $ sweep_unroll_arg $ sweep_bus_arg $ sweep_target_ns_arg $ config_term)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
        "Compile many kernels in parallel with content-addressed caching \
         and structured tracing.")
    term

(* ---- tune ---- *)

let tune_cmd =
  let module Objective = Roccc_tune.Objective in
  let module Search = Roccc_tune.Search in
  let target_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"FILE.c|KERNEL"
          ~doc:
            "A C source file (a $(i,.c) suffix may be omitted) or the name \
             of a built-in Table 1 kernel.")
  in
  let entry_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "e"; "entry" ] ~docv:"FUNC"
          ~doc:
            "Kernel function (default: the file's single kernel-eligible \
             function, or the built-in kernel's entry).")
  in
  let objective_arg =
    Arg.(
      value & opt string "max-mhz"
      & info [ "objective" ] ~docv:"OBJ"
          ~doc:
            "What to optimize: $(b,max-mhz) (fastest clock within \
             $(b,--slice-budget)), $(b,min-slices) (smallest design \
             meeting $(b,--target-mhz)) or $(b,min-latch-bits) (fewest \
             pipeline-register bits).")
  in
  let slice_budget_arg =
    Arg.(
      value & opt (some int) None
      & info [ "slice-budget" ] ~docv:"N"
          ~doc:
            "Feasibility bound for $(b,max-mhz): designs over N slices are \
             discarded (default: the whole XC2V2000).")
  in
  let target_mhz_arg =
    Arg.(
      value & opt (some float) None
      & info [ "target-mhz" ] ~docv:"MHZ"
          ~doc:
            "Feasibility bound for $(b,min-slices): designs clocking below \
             MHZ are discarded.")
  in
  let unroll_range_arg =
    Arg.(
      value & opt (list int) Search.default_space.Search.sp_unroll
      & info [ "unroll" ] ~docv:"N,..."
          ~doc:"Outer-loop unroll factors to explore.")
  in
  let bus_range_arg =
    Arg.(
      value & opt (list int) Search.default_space.Search.sp_bus
      & info [ "bus" ] ~docv:"N,..."
          ~doc:"Memory bus widths (elements per access) to explore.")
  in
  let target_ns_range_arg =
    Arg.(
      value & opt (list float) Search.default_space.Search.sp_target_ns
      & info [ "target-ns" ] ~docv:"NS,..."
          ~doc:"Per-stage combinational clock targets to explore.")
  in
  let stage_budget_range_arg =
    Arg.(
      value & opt (list int) Search.default_space.Search.sp_stage_budget
      & info [ "stage-budget" ] ~docv:"N,..."
          ~doc:
            "Wide-operator stage budgets to explore: each caps the stage \
             count of a multi-stage (>32-bit) operator region; 0 means \
             the decomposition's natural depth. Single-cycle kernels are \
             unaffected.")
  in
  let decomp_range_arg =
    Arg.(
      value & opt (list string)
        (List.map Roccc_datapath.Delay.decomp_name
           Search.default_space.Search.sp_decomp)
      & info [ "decomp" ] ~docv:"NAME,..."
          ~doc:
            "Wide-multiplier decompositions to explore: $(b,csa) \
             (partial products + carry-save 3:2 compression tree) or \
             $(b,addtree) (binary adder tree).")
  in
  let margin_arg =
    Arg.(
      value & opt float Search.default_margin
      & info [ "prune-margin" ] ~docv:"M"
          ~doc:
            "Quick-rung pruning margin: a candidate is discarded before \
             exact costing only when another beats it by a factor of 1+M \
             on every axis (and the constraint is relaxed by 1+M). 0 \
             disables quick-rung pruning.")
  in
  let no_quick_arg =
    Arg.(
      value & flag
      & info [ "no-quick" ]
          ~doc:
            "Skip the quick analytic rung entirely; every candidate gets \
             exact estimate-tier costing.")
  in
  let jobs_arg =
    Arg.(
      value & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains; 0 or omitted means auto (the machine's recommended count).")
  in
  let pareto_arg =
    Arg.(
      value & opt (some string) None
      & info [ "pareto" ] ~docv:"FILE"
          ~doc:
            "Write the Pareto front, per-candidate statuses and pruning \
             statistics as JSON.")
  in
  let trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write per-candidate and per-pass spans as Chrome trace_event \
             JSON; mid-end passes reused from the search's shared cache \
             appear as zero-duration $(i,cached) spans.")
  in
  let run target entry objective slice_budget target_mhz unroll bus target_ns
      stage_budget decomp margin no_quick jobs pareto trace_out config =
    with_errors (fun () ->
        let objective =
          checked (Objective.parse ~name:objective ~slice_budget ~target_mhz)
        in
        let unroll =
          checked (Server.check_positive_int_list ~flag:"--unroll" unroll)
        in
        let bus = checked (Server.check_positive_int_list ~flag:"--bus" bus) in
        let target_ns =
          checked
            (Server.check_positive_float_list ~flag:"--target-ns" target_ns)
        in
        let stage_budget =
          checked
            (Server.check_nonneg_int_list ~flag:"--stage-budget" stage_budget)
        in
        let decomp =
          if decomp = [] then usage_error "--decomp expects a non-empty list";
          List.map
            (fun name ->
              match Roccc_datapath.Delay.decomp_of_string name with
              | Some d -> d
              | None ->
                usage_error
                  (Printf.sprintf
                     "--decomp: unknown decomposition %s (expected %s)" name
                     (String.concat " or "
                        (List.map Roccc_datapath.Delay.decomp_name
                           Roccc_datapath.Delay.all_decomps))))
            decomp
        in
        if not (Float.is_finite margin) || margin < 0.0 then
          usage_error
            (Printf.sprintf "--prune-margin expects a non-negative number, got %g"
               margin);
        let jobs =
          match jobs with
          | None -> 0
          | Some n -> checked (Server.check_jobs ~flag:"--jobs" n)
        in
        (* TARGET is a file, a file missing its .c suffix, or a built-in
           Table 1 kernel name. *)
        let entry_of_source file source =
          match entry with
          | Some e -> e
          | None -> (
            match Driver.eligible_entries source with
            | [ e ] -> e
            | [] ->
              usage_error (file ^ ": no kernel-eligible function (give -e FUNC)")
            | es ->
              usage_error
                (Printf.sprintf "%s has several kernel functions (%s); pick \
                                 one with -e"
                   file (String.concat ", " es)))
        in
        let source, entry, luts, base =
          if Sys.file_exists target && not (Sys.is_directory target) then
            let source = read_file target in
            (source, entry_of_source target source, [], Driver.default_options)
          else if Sys.file_exists (target ^ ".c") then
            let file = target ^ ".c" in
            let source = read_file file in
            (source, entry_of_source file source, [], Driver.default_options)
          else
            match Kernels.find (Filename.basename target) with
            | Some b ->
              ( b.Kernels.source,
                Option.value entry ~default:b.Kernels.entry,
                b.Kernels.luts,
                b.Kernels.tune Driver.default_options )
            | None ->
              usage_error
                (Printf.sprintf "no such file or built-in kernel: %s" target)
        in
        let settings =
          { Search.st_objective = objective;
            st_space =
              { Search.sp_unroll = unroll;
                sp_bus = bus;
                sp_target_ns = target_ns;
                sp_stage_budget = stage_budget;
                sp_decomp = decomp };
            st_margin = margin;
            st_use_quick = not no_quick;
            st_domains = jobs;
            st_base = base }
        in
        let cache = Svc_cache.create () in
        let trace = Option.map (fun _ -> Svc_trace.create ()) trace_out in
        let result = Search.run ~cache ?trace ~config ~luts settings ~source ~entry in
        print_string (Search.table result);
        (match pareto with
        | Some path ->
          let oc = open_out path in
          output_string oc (Search.to_json result);
          close_out oc;
          Printf.printf "wrote %s\n" path
        | None -> ());
        (match trace_out, trace with
        | Some path, Some tr ->
          let oc = open_out path in
          output_string oc (Svc_trace.to_chrome_json tr);
          close_out oc;
          Printf.printf "wrote %s\n" path
        | _ -> ());
        if result.Search.res_front = [] then begin
          Printf.eprintf "roccc tune: empty front — no feasible candidate\n";
          exit 1
        end)
  in
  let term =
    Term.(
      const run $ target_arg $ entry_arg $ objective_arg $ slice_budget_arg
      $ target_mhz_arg $ unroll_range_arg $ bus_range_arg
      $ target_ns_range_arg $ stage_budget_range_arg $ decomp_range_arg
      $ margin_arg $ no_quick_arg $ jobs_arg
      $ pareto_arg $ trace_arg $ config_term)
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Pareto autotuner: search the unroll x bus x clock-target space \
          for one kernel under an objective, pruning with cheap analytic \
          costing before paying for full compiles.")
    term

(* ---- serve / farm shared plumbing ---- *)

let resolve_serve_limits ~jobs ~queue_depth ~deadline_ms ~max_request_bytes =
  checked
    (Server.validate_limits
       { Server.workers =
           (match jobs with
           | None -> 0
           | Some n -> checked (Server.check_jobs ~flag:"--jobs" n));
         queue_depth;
         deadline_ms;
         max_request_bytes })

let install_fault_plan (inject : string option) : unit =
  match inject with
  | Some spec -> (
    match Faults.parse spec with
    | Ok plan -> Faults.install plan
    | Error msg -> usage_error ("--inject-fault: " ^ msg))
  | None -> (
    match Faults.from_env () with
    | Ok (Some plan) -> Faults.install plan
    | Ok None -> ()
    | Error msg -> usage_error (Faults.env_var ^ ": " ^ msg))

(* Bind a fresh listening Unix socket, replacing any stale file a dead
   server left behind. The farm binds BEFORE forking so every child
   accepts on the inherited descriptor. *)
let bind_unix_socket (path : string) : Unix.file_descr =
  if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 64;
  sock

(* ---- serve ---- *)

let serve_cmd =
  let jobs_arg =
    Arg.(
      value & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains; 0 or omitted means auto (the machine's recommended count).")
  in
  let queue_depth_arg =
    Arg.(
      value & opt int Server.default_limits.Server.queue_depth
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Admission queue bound; requests beyond it are shed with an \
             $(i,overloaded) response instead of queueing without bound.")
  in
  let deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request deadline; compilation is cancelled \
             cooperatively at the next pass boundary once it expires. A \
             request's own $(i,deadline_ms) field overrides this.")
  in
  let max_bytes_arg =
    Arg.(
      value & opt int Server.default_limits.Server.max_request_bytes
      & info [ "max-request-bytes" ] ~docv:"N"
          ~doc:"Reject request lines longer than N bytes.")
  in
  let socket_arg =
    Arg.(
      value & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix socket instead of stdin, serving any number \
             of simultaneous connections over one shared admission queue \
             and worker pool (metrics and cache persist across \
             connections).")
  in
  let cache_arg =
    Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:"Memoize stage outputs and persist artifacts on disk.")
  in
  let cache_dir_arg =
    Arg.(
      value & opt string Svc_cache.default_disk_dir
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Disk cache location (with $(b,--cache)).")
  in
  let trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write request/pass spans and queue-depth counters as Chrome \
             trace_event JSON on exit.")
  in
  let inject_fault_arg =
    Arg.(
      value & opt (some string) None
      & info [ "inject-fault" ] ~docv:"SPEC"
          ~doc:
            "Deterministic fault injection, e.g. \
             $(i,cache_read:0.5,driver_pass:0.1) (points: scheduler_claim, \
             driver_pass, cache_read, cache_write; rates in (0,1], default \
             1). Overrides $(b,ROCCC_FAULT).")
  in
  let run jobs queue_depth deadline_ms max_request_bytes socket use_cache
      cache_dir trace_out inject config =
    with_errors (fun () ->
        let limits =
          resolve_serve_limits ~jobs ~queue_depth ~deadline_ms
            ~max_request_bytes
        in
        install_fault_plan inject;
        let cache =
          if use_cache then Some (Svc_cache.create ~disk_dir:cache_dir ())
          else None
        in
        let trace = Option.map (fun _ -> Svc_trace.create ()) trace_out in
        let srv = Server.create ?cache ~config ?trace ~limits () in
        (* SIGTERM / SIGINT only flag the server; admission stops at the
           next line and queued requests drain before exit. *)
        let on_signal = Sys.Signal_handle (fun _ -> Server.request_stop srv) in
        (try
           Sys.set_signal Sys.sigterm on_signal;
           Sys.set_signal Sys.sigint on_signal
         with Invalid_argument _ | Sys_error _ -> ());
        let summarize (s : Roccc_service.Metrics.snapshot) =
          Printf.eprintf
            "roccc serve: drained after %.1fs: %d received, %d ok, %d \
             failed, %d deadline_exceeded, %d shed, %d bad_request\n%!"
            s.Roccc_service.Metrics.s_uptime_s
            s.Roccc_service.Metrics.s_received s.Roccc_service.Metrics.s_ok
            s.Roccc_service.Metrics.s_failed
            s.Roccc_service.Metrics.s_deadline
            s.Roccc_service.Metrics.s_shed
            s.Roccc_service.Metrics.s_bad_request
        in
        (match socket with
        | None -> summarize (Server.serve srv stdin stdout)
        | Some path ->
          let sock = bind_unix_socket path in
          Printf.eprintf "roccc serve: listening on %s\n%!" path;
          let snap = Server.serve_socket srv sock in
          (try Unix.close sock with Unix.Unix_error _ -> ());
          (try Sys.remove path with Sys_error _ -> ());
          summarize snap);
        (match trace_out, trace with
        | Some path, Some tr ->
          let oc = open_out path in
          output_string oc (Svc_trace.to_chrome_json tr);
          close_out oc;
          Printf.eprintf "roccc serve: wrote %s\n%!" path
        | _ -> ()))
  in
  let term =
    Term.(
      const run $ jobs_arg $ queue_depth_arg $ deadline_arg $ max_bytes_arg
      $ socket_arg $ cache_arg $ cache_dir_arg $ trace_arg $ inject_fault_arg
      $ config_term)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Compile server: line-delimited JSON requests on stdin (or a Unix \
          socket, serving concurrent connections) with bounded admission, \
          per-request deadlines, health snapshots and clean drain on \
          EOF/SIGTERM.")
    term

(* ---- farm ---- *)

let farm_cmd =
  let procs_arg =
    Arg.(
      value & opt int 2
      & info [ "procs" ] ~docv:"N"
          ~doc:
            "Serve processes to fork. All accept on the same listening \
             socket (bound before the fork) and share the disk cache tier.")
  in
  let socket_arg =
    Arg.(
      required & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket to listen on.")
  in
  let state_dir_arg =
    Arg.(
      value & opt string "_roccc_farm"
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Farm state directory: the supervisor's pid table \
             ($(i,farm.json)) and each child's health snapshot \
             ($(i,child-N.json)).")
  in
  let max_restarts_arg =
    Arg.(
      value & opt int 16
      & info [ "max-restarts" ] ~docv:"N"
          ~doc:
            "Restart budget for crashed children; once exhausted the \
             farm shuts down instead of flapping.")
  in
  let jobs_arg =
    Arg.(
      value & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains per child; 0 or omitted means auto.")
  in
  let queue_depth_arg =
    Arg.(
      value & opt int Server.default_limits.Server.queue_depth
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Per-child admission queue bound.")
  in
  let deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Default per-request deadline in each child.")
  in
  let max_bytes_arg =
    Arg.(
      value & opt int Server.default_limits.Server.max_request_bytes
      & info [ "max-request-bytes" ] ~docv:"N"
          ~doc:"Reject request lines longer than N bytes.")
  in
  let cache_arg =
    Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:
            "Memoize stage outputs per child and share persisted \
             artifacts across children through the disk tier.")
  in
  let cache_dir_arg =
    Arg.(
      value & opt string Svc_cache.default_disk_dir
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Disk cache location shared by every child (with $(b,--cache)).")
  in
  let inject_fault_arg =
    Arg.(
      value & opt (some string) None
      & info [ "inject-fault" ] ~docv:"SPEC"
          ~doc:"Deterministic fault injection, inherited by every child.")
  in
  let run procs socket state_dir max_restarts jobs queue_depth deadline_ms
      max_request_bytes use_cache cache_dir inject config =
    with_errors (fun () ->
        let procs =
          checked (Server.check_positive_int ~flag:"--procs" procs)
        in
        let max_restarts =
          if max_restarts < 0 then
            usage_error "--max-restarts expects a non-negative integer"
          else max_restarts
        in
        let limits =
          resolve_serve_limits ~jobs ~queue_depth ~deadline_ms
            ~max_request_bytes
        in
        install_fault_plan inject;
        (* stale snapshots from a previous farm would pollute this run's
           aggregate *)
        (match Sys.readdir state_dir with
        | exception Sys_error _ -> ()
        | names ->
          Array.iter
            (fun n ->
              if
                String.length n > 6
                && String.sub n 0 6 = "child-"
                && Filename.check_suffix n ".json"
              then
                try Sys.remove (Filename.concat state_dir n)
                with Sys_error _ -> ())
            names);
        let sock = bind_unix_socket socket in
        Printf.eprintf "roccc farm: %d processes listening on %s\n%!" procs
          socket;
        let outcome =
          Farm.run ~max_restarts ~procs ~state_dir
            ~child:(fun ~index ->
              (* each child builds its own server over its own cache
                 handle; the handles share the disk directory, and the
                 pid-aware tmp sweep keeps siblings' in-flight writes
                 safe *)
              let cache =
                if use_cache then
                  Some (Svc_cache.create ~disk_dir:cache_dir ())
                else None
              in
              let srv =
                Server.create ?cache ~config ~limits
                  ~status_path:(Farm.status_file state_dir index) ()
              in
              let on_signal =
                Sys.Signal_handle (fun _ -> Server.request_stop srv)
              in
              (try
                 Sys.set_signal Sys.sigterm on_signal;
                 Sys.set_signal Sys.sigint on_signal
               with Invalid_argument _ | Sys_error _ -> ());
              ignore (Server.serve_socket srv sock))
            ()
        in
        (try Unix.close sock with Unix.Unix_error _ -> ());
        (try Sys.remove socket with Sys_error _ -> ());
        Printf.eprintf
          "roccc farm: shut down (%s, %d restarts, %d spawns)\n%!"
          (if outcome.Farm.farm_clean then "clean" else "signalled")
          outcome.Farm.farm_restarts outcome.Farm.farm_spawns;
        (* the aggregated cross-child health view goes to stdout so
           scripts can capture it without parsing the progress chatter *)
        print_endline
          (Roccc_service.Json.to_string
             (Farm.aggregate_health ~state_dir)))
  in
  let term =
    Term.(
      const run $ procs_arg $ socket_arg $ state_dir_arg $ max_restarts_arg
      $ jobs_arg $ queue_depth_arg $ deadline_arg $ max_bytes_arg $ cache_arg
      $ cache_dir_arg $ inject_fault_arg $ config_term)
  in
  Cmd.v
    (Cmd.info "farm"
       ~doc:
         "Multi-process compile farm: fork N serve processes accepting on \
          one shared Unix socket and sharing one disk cache, with crash \
          restarts and aggregated health.")
    term

let main_cmd =
  let doc = "ROCCC-style C-to-VHDL compiler (DATE 2005 reproduction)" in
  Cmd.group (Cmd.info "roccc" ~doc)
    [ compile_cmd; compile_all_cmd; simulate_cmd; profile_cmd; bench_cmd;
      batch_cmd; tune_cmd; serve_cmd; farm_cmd ]

let () = exit (Cmd.eval main_cmd)
